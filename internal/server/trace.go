package server

import (
	"context"
	"net/http"
	"strconv"
	"time"

	"riscvsim/internal/api"
	"riscvsim/internal/trace"
	"riscvsim/sim"
)

const (
	// defaultTraceBurst is how many cycles run between NDJSON flushes
	// when a trace-stream request doesn't say.
	defaultTraceBurst = 256
	// defaultTraceStreamEvents caps streamed trace events by default;
	// requests may raise it up to api.MaxTraceStreamEvents.
	defaultTraceStreamEvents = 100_000
)

// burstTracer buffers filter-matching events between stream flushes.
// keep bounds the buffer so one huge step burst cannot hold an entire
// run's events in memory; past it the tracer keeps counting (Total in
// the final summary stays exact) but stops buffering.
type burstTracer struct {
	filter trace.Filter
	keep   int
	buf    []sim.StageEvent
	total  uint64
}

// Filter implements trace.Filterer, so the core skips building events
// for stages the stream filtered out.
func (t *burstTracer) Filter() trace.Filter { return t.filter }

// Trace implements trace.Tracer.
func (t *burstTracer) Trace(ev trace.StageEvent) {
	if !t.filter.Match(&ev) {
		return
	}
	t.total++
	if len(t.buf) < t.keep {
		t.buf = append(t.buf, ev)
	}
}

// handleSessionTrace is the NDJSON pipeline-trace endpoint
// (POST /api/v1/session/trace): it builds a machine — from source or a
// checkpoint — runs it, and pushes one TraceStreamEvent line per stage
// event passing the stage/PC filters, then a final summary line. The
// web client's pipeline view and the CLI's -trace remote mode consume it.
func (s *Server) handleSessionTrace(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	defer func() {
		s.reqCount.Add(1)
		s.totalNs.Add(uint64(time.Since(start)))
	}()

	reqCodec, respCodec := api.Negotiate(r.Header.Get("Content-Type"), r.Header.Get("Accept"))
	r = r.WithContext(context.WithValue(r.Context(), reqCodecKey{}, reqCodec))

	var req api.TraceStreamRequest
	if aerr := s.decode(w, r, &req); aerr != nil {
		s.writeError(w, aerr)
		return
	}
	filter := trace.NoFilter
	optLimit := 0
	if opts := req.Trace; opts != nil {
		f, err := sim.ParseTraceFilter(opts.Stages, opts.PCRange)
		if err != nil {
			s.writeError(w, api.WrapError(api.CodeBadTrace, err))
			return
		}
		filter = f
		// The options object is shared with /simulate, so its limit gets
		// the same validation; on a stream it caps the emitted events
		// (combined with MaxEvents below).
		if opts.Limit < 0 || opts.Limit > api.MaxTraceLimit {
			s.writeError(w, api.Errorf(api.CodeBadTrace,
				"trace limit %d out of range (1..%d)", opts.Limit, api.MaxTraceLimit))
			return
		}
		optLimit = opts.Limit
	}
	m, aerr := s.buildMachine(&req.SimulateRequest)
	if aerr != nil {
		s.writeError(w, aerr)
		return
	}

	burst := req.StepBurst
	if burst == 0 {
		burst = defaultTraceBurst
	}
	limit := req.Steps
	if limit == 0 || limit > maxBatchCycles {
		limit = maxBatchCycles
	}
	maxEvents := req.MaxEvents
	if maxEvents <= 0 {
		maxEvents = defaultTraceStreamEvents
	}
	if maxEvents > api.MaxTraceStreamEvents {
		maxEvents = api.MaxTraceStreamEvents
	}
	if optLimit > 0 && optLimit < maxEvents {
		maxEvents = optLimit
	}

	// Buffer at most one event past the stream cap: enough to detect
	// truncation, bounded regardless of how large a burst the request
	// asked for.
	collector := &burstTracer{filter: filter, keep: maxEvents + 1}
	m.SetTracer(collector)

	w.Header().Set("Content-Type", api.MediaTypeNDJSON)
	w.Header().Set("X-Codec", respCodec.Name())
	w.Header().Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)

	writeLine := func(ev *api.TraceStreamEvent, flush bool) bool {
		buf := api.GetBuffer()
		defer api.PutBuffer(buf)
		jstart := time.Now()
		err := respCodec.Encode(buf, ev)
		s.addCodecTime(respCodec.Name(), time.Since(jstart), true)
		if err != nil {
			return false
		}
		if b := buf.Bytes(); len(b) == 0 || b[len(b)-1] != '\n' {
			buf.WriteByte('\n')
		}
		if _, err := w.Write(buf.Bytes()); err != nil {
			return false
		}
		if flush && flusher != nil {
			flusher.Flush()
		}
		s.streamEvents.Add(1)
		return true
	}

	ctx := r.Context()
	seq := 0
	truncated := false
	var stepped uint64
	for !m.Halted() && stepped < limit {
		if ctx.Err() != nil {
			return // client went away
		}
		n := burst
		if remaining := limit - stepped; n > remaining {
			n = remaining
		}
		sstart := time.Now()
		ran := m.StepN(n)
		s.simNs.Add(uint64(time.Since(sstart)))
		stepped += ran
		for i := range collector.buf {
			if seq >= maxEvents {
				truncated = true
				break
			}
			if !writeLine(&api.TraceStreamEvent{Seq: seq, Event: &collector.buf[i]}, false) {
				return
			}
			seq++
		}
		collector.buf = collector.buf[:0]
		if flusher != nil {
			flusher.Flush()
		}
		if truncated {
			// Event cap: finish the run streaming nothing further, but
			// keep the collector attached in count-only mode so the
			// summary's Total stays exact.
			collector.keep = 0
			collector.buf = nil
			sstart := time.Now()
			stepped += m.Run(limit - stepped)
			s.simNs.Add(uint64(time.Since(sstart)))
			break
		}
		if ran == 0 && !m.Halted() {
			break // paused (breakpoint); don't spin
		}
	}

	writeLine(&api.TraceStreamEvent{
		Seq:        seq,
		Done:       true,
		Cycle:      m.Cycle(),
		Halted:     m.Halted(),
		HaltReason: m.HaltReason(),
		Truncated:  truncated,
		Total:      collector.total,
	}, true)
}

// handleSessionLog serves a session's debug log with since_cycle paging
// (GET /api/v1/session/{id}/log?since_cycle=N): the log no longer has to
// piggyback on step responses. The log is bounded (newest entries kept),
// so a pager that falls behind the bound sees a gap rather than an error.
func (s *Server) handleSessionLog(w http.ResponseWriter, r *http.Request) (any, int, error) {
	id := r.PathValue("id")
	var since uint64
	if q := r.URL.Query().Get("since_cycle"); q != "" {
		v, err := strconv.ParseUint(q, 10, 64)
		if err != nil {
			return nil, 0, api.Errorf(api.CodeBadRequest, "bad since_cycle %q", q)
		}
		since = v
	}
	sess, aerr := s.lockSession(id)
	if aerr != nil {
		return nil, 0, aerr
	}
	defer sess.mu.Unlock()
	log := sess.machine.Log()
	// Entries are cycle-ordered; find the first at or past since.
	lo := 0
	for lo < len(log) && log[lo].Cycle < since {
		lo++
	}
	cycle := sess.machine.Cycle()
	resp := &api.SessionLogResponse{
		SessionID: id,
		Cycle:     cycle,
		Entries:   append([]sim.LogEntry(nil), log[lo:]...),
		// The log is complete through the current cycle, so paging
		// resumes right past it.
		NextCycle: cycle + 1,
	}
	return resp, 0, nil
}
