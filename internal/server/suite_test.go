package server

import (
	"encoding/json"
	"net/http"
	"testing"

	"riscvsim/internal/api"
	"riscvsim/internal/workload"
)

// TestSuiteEndpoint runs a filtered suite over the wire and checks the
// rows against the library runner: the server path (export/import of the
// config, fan-out over the batch pool) must reproduce the in-process
// metrics exactly.
func TestSuiteEndpoint(t *testing.T) {
	srv, ts := newTestServer(t)
	resp, body := postJSON(t, ts.URL+"/api/v1/suite", &api.SuiteRequest{Filter: "matmul,bitmix"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var sr api.SuiteResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	if len(sr.Workloads) != 2 || sr.Workers < 1 || sr.Architecture == "" || sr.ConfigFingerprint == "" {
		t.Fatalf("suite response incomplete: %+v", sr)
	}

	local, err := workload.Run(workload.Options{Filter: "matmul,bitmix"})
	if err != nil {
		t.Fatal(err)
	}
	if local.ConfigFingerprint != sr.ConfigFingerprint {
		t.Errorf("fingerprint: server %s, local %s", sr.ConfigFingerprint, local.ConfigFingerprint)
	}
	for i, want := range local.Workloads {
		got := sr.Workloads[i]
		if diffs := workload.DiffMetrics(want, got); len(diffs) != 0 {
			t.Errorf("%s: server metrics diverge from library runner: %v", want.Workload, diffs)
		}
	}

	m := srv.Metrics()
	if m.SuiteRequests != 1 || m.SuiteWorkloads != 2 {
		t.Errorf("suite counters: %d requests, %d workloads", m.SuiteRequests, m.SuiteWorkloads)
	}
}

// TestSuiteEndpointPreset checks preset selection changes the report.
func TestSuiteEndpointPreset(t *testing.T) {
	_, ts := newTestServer(t)
	resp, body := postJSON(t, ts.URL+"/api/v1/suite", &api.SuiteRequest{Preset: "scalar", Filter: "bitmix"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var sr api.SuiteResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	if sr.Architecture != "scalar" {
		t.Errorf("architecture %q, want scalar", sr.Architecture)
	}
	// The 1-wide scalar core cannot reach the default's ~2 IPC on the
	// width-ceiling workload.
	if len(sr.Workloads) != 1 || sr.Workloads[0].IPC > 1.05 {
		t.Errorf("scalar bitmix row unexpected: %+v", sr.Workloads)
	}
}

// TestSuiteEndpointErrors pins the stable error codes.
func TestSuiteEndpointErrors(t *testing.T) {
	_, ts := newTestServer(t)
	for _, tc := range []struct {
		name   string
		req    *api.SuiteRequest
		status int
		code   string
	}{
		{"bad filter", &api.SuiteRequest{Filter: "no-such-thing"}, http.StatusBadRequest, api.CodeBadFilter},
		{"bad preset", &api.SuiteRequest{Preset: "no-such-preset"}, http.StatusUnprocessableEntity, api.CodeUnknownPreset},
	} {
		resp, body := postJSON(t, ts.URL+"/api/v1/suite", tc.req)
		if resp.StatusCode != tc.status {
			t.Errorf("%s: status %d, want %d (%s)", tc.name, resp.StatusCode, tc.status, body)
			continue
		}
		if env := decodeErrorEnvelope(t, body); env.Code != tc.code {
			t.Errorf("%s: code %q, want %q", tc.name, env.Code, tc.code)
		}
	}
}
