package server

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"riscvsim/sim"
)

func testMachine(t testing.TB) *sim.Machine {
	t.Helper()
	m, err := sim.NewFromAsm(sim.DefaultConfig(), "li a0, 1\n", "")
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestStoreEvictsLeastRecentlyUsed(t *testing.T) {
	st := newSessionStore(3, 0, "", 0, nil)
	a := st.Add(testMachine(t))
	b := st.Add(testMachine(t))
	c := st.Add(testMachine(t))

	// Touch a so b becomes the least recently used.
	if _, ok := st.Get(a); !ok {
		t.Fatal("a missing")
	}
	d := st.Add(testMachine(t)) // evicts b, not a

	if _, ok := st.Get(b); ok {
		t.Error("b should have been evicted (least recently used)")
	}
	for _, id := range []string{a, c, d} {
		if _, ok := st.Get(id); !ok {
			t.Errorf("%s should have survived", id)
		}
	}
	if st.Len() != 3 {
		t.Errorf("len = %d, want 3", st.Len())
	}
}

func TestStoreEvictionOrderIsRecency(t *testing.T) {
	st := newSessionStore(2, 0, "", 0, nil)
	ids := []string{st.Add(testMachine(t)), st.Add(testMachine(t))}
	for i := 0; i < 4; i++ {
		ids = append(ids, st.Add(testMachine(t)))
	}
	// Only the last two can remain; every earlier one must be gone.
	for _, id := range ids[:len(ids)-2] {
		if _, ok := st.Get(id); ok {
			t.Errorf("%s should have been evicted", id)
		}
	}
	for _, id := range ids[len(ids)-2:] {
		if _, ok := st.Get(id); !ok {
			t.Errorf("%s should remain", id)
		}
	}
}

func TestStoreIdleTTLSweep(t *testing.T) {
	now := time.Unix(1000, 0)
	st := newSessionStore(10, time.Minute, "", 0, nil)
	st.now = func() time.Time { return now }

	old := st.Add(testMachine(t))
	now = now.Add(30 * time.Second)
	fresh := st.Add(testMachine(t))

	// 40 more seconds: old is 70s idle (expired), fresh 40s (alive).
	now = now.Add(40 * time.Second)
	if n := st.Sweep(); n != 1 {
		t.Errorf("sweep removed %d, want 1", n)
	}
	if _, ok := st.Get(old); ok {
		t.Error("idle session survived its TTL")
	}
	if _, ok := st.Get(fresh); !ok {
		t.Error("live session swept")
	}

	// Touching refreshes the TTL.
	now = now.Add(50 * time.Second)
	if _, ok := st.Get(fresh); !ok {
		t.Fatal("fresh expired too early")
	}
	now = now.Add(50 * time.Second) // 50s since touch, alive
	if _, ok := st.Get(fresh); !ok {
		t.Error("touched session must survive a full TTL from the touch")
	}
}

func TestStoreSweepsOpportunistically(t *testing.T) {
	now := time.Unix(1000, 0)
	st := newSessionStore(10, time.Minute, "", 0, nil)
	st.now = func() time.Time { return now }
	old := st.Add(testMachine(t))
	now = now.Add(2 * time.Minute)
	// A plain Add must sweep the expired session as a side effect.
	st.Add(testMachine(t))
	if st.Len() != 1 {
		t.Errorf("len = %d, want 1 (expired session not swept on Add)", st.Len())
	}
	if _, ok := st.Get(old); ok {
		t.Error("expired session still reachable")
	}
}

func TestStoreConcurrentAccess(t *testing.T) {
	st := newSessionStore(16, time.Minute, "", 0, nil)
	var wg sync.WaitGroup
	ids := make([]string, 8)
	for i := range ids {
		ids[i] = st.Add(testMachine(t))
	}
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				switch i % 4 {
				case 0:
					st.Add(testMachine(t))
				case 1:
					st.Get(ids[(g+i)%len(ids)])
				case 2:
					st.Remove(fmt.Sprintf("s%08d", i))
				default:
					st.Sweep()
				}
			}
		}(g)
	}
	wg.Wait()
	if st.Len() > 16 {
		t.Errorf("store overflowed its cap: %d", st.Len())
	}
}
