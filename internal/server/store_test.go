package server

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"

	"riscvsim/internal/store"
	"riscvsim/sim"
)

func testMachine(t testing.TB) *sim.Machine {
	t.Helper()
	m, err := sim.NewFromAsm(sim.DefaultConfig(), "li a0, 1\n", "")
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// dirStore opens a directory-backed checkpoint store for tests.
func dirStore(t testing.TB, path string) *store.Dir {
	t.Helper()
	d, err := store.NewDir(path)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestStoreEvictsLeastRecentlyUsed(t *testing.T) {
	st := newSessionStore(3, 0, nil, 0, false, nil)
	a := st.Add(testMachine(t))
	b := st.Add(testMachine(t))
	c := st.Add(testMachine(t))

	// Touch a so b becomes the least recently used.
	if _, ok := st.Get(a); !ok {
		t.Fatal("a missing")
	}
	d := st.Add(testMachine(t)) // evicts b, not a

	if _, ok := st.Get(b); ok {
		t.Error("b should have been evicted (least recently used)")
	}
	for _, id := range []string{a, c, d} {
		if _, ok := st.Get(id); !ok {
			t.Errorf("%s should have survived", id)
		}
	}
	if st.Len() != 3 {
		t.Errorf("len = %d, want 3", st.Len())
	}
}

func TestStoreEvictionOrderIsRecency(t *testing.T) {
	st := newSessionStore(2, 0, nil, 0, false, nil)
	ids := []string{st.Add(testMachine(t)), st.Add(testMachine(t))}
	for i := 0; i < 4; i++ {
		ids = append(ids, st.Add(testMachine(t)))
	}
	// Only the last two can remain; every earlier one must be gone.
	for _, id := range ids[:len(ids)-2] {
		if _, ok := st.Get(id); ok {
			t.Errorf("%s should have been evicted", id)
		}
	}
	for _, id := range ids[len(ids)-2:] {
		if _, ok := st.Get(id); !ok {
			t.Errorf("%s should remain", id)
		}
	}
}

func TestStoreIdleTTLSweep(t *testing.T) {
	now := time.Unix(1000, 0)
	st := newSessionStore(10, time.Minute, nil, 0, false, nil)
	st.now = func() time.Time { return now }

	old := st.Add(testMachine(t))
	now = now.Add(30 * time.Second)
	fresh := st.Add(testMachine(t))

	// 40 more seconds: old is 70s idle (expired), fresh 40s (alive).
	now = now.Add(40 * time.Second)
	if n := st.Sweep(); n != 1 {
		t.Errorf("sweep removed %d, want 1", n)
	}
	if _, ok := st.Get(old); ok {
		t.Error("idle session survived its TTL")
	}
	if _, ok := st.Get(fresh); !ok {
		t.Error("live session swept")
	}

	// Touching refreshes the TTL.
	now = now.Add(50 * time.Second)
	if _, ok := st.Get(fresh); !ok {
		t.Fatal("fresh expired too early")
	}
	now = now.Add(50 * time.Second) // 50s since touch, alive
	if _, ok := st.Get(fresh); !ok {
		t.Error("touched session must survive a full TTL from the touch")
	}
}

func TestStoreSweepsOpportunistically(t *testing.T) {
	now := time.Unix(1000, 0)
	st := newSessionStore(10, time.Minute, nil, 0, false, nil)
	st.now = func() time.Time { return now }
	old := st.Add(testMachine(t))
	now = now.Add(2 * time.Minute)
	// A plain Add must sweep the expired session as a side effect.
	st.Add(testMachine(t))
	if st.Len() != 1 {
		t.Errorf("len = %d, want 1 (expired session not swept on Add)", st.Len())
	}
	if _, ok := st.Get(old); ok {
		t.Error("expired session still reachable")
	}
}

func TestStoreConcurrentAccess(t *testing.T) {
	st := newSessionStore(16, time.Minute, nil, 0, false, nil)
	var wg sync.WaitGroup
	ids := make([]string, 8)
	for i := range ids {
		ids[i] = st.Add(testMachine(t))
	}
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				switch i % 4 {
				case 0:
					st.Add(testMachine(t))
				case 1:
					st.Get(ids[(g+i)%len(ids)])
				case 2:
					st.Remove(fmt.Sprintf("s%08d", i))
				default:
					st.Sweep()
				}
			}
		}(g)
	}
	wg.Wait()
	if st.Len() > 16 {
		t.Errorf("store overflowed its cap: %d", st.Len())
	}
}

// steppedMachine builds a machine advanced n cycles (a non-trivial
// state to checkpoint).
func steppedMachine(t testing.TB, n uint64) *sim.Machine {
	t.Helper()
	m, err := sim.NewFromAsm(sim.DefaultConfig(), "loop: addi t0, t0, 1\nbeq x0, x0, loop\n", "")
	if err != nil {
		t.Fatal(err)
	}
	m.StepN(n)
	return m
}

// TestRehydrateCorruptedBlob pins the corrupted/truncated-store path:
// a blob that no longer decodes must surface as a miss (the ckpt
// sentinel errors internally), never a panic, and the poisoned blob is
// dropped so it cannot wedge the ID forever.
func TestRehydrateCorruptedBlob(t *testing.T) {
	backend := store.NewMem()
	st := newSessionStore(4, 0, backend, 0, false, nil)
	id := st.Add(steppedMachine(t, 50))
	if n := st.SpillAll(); n != 1 {
		t.Fatalf("spilled %d, want 1", n)
	}
	// Truncate the stored checkpoint mid-stream.
	if !backend.Corrupt(id, 40) {
		t.Fatal("no blob to corrupt")
	}
	if _, ok := st.Get(id); ok {
		t.Fatal("corrupted blob rehydrated")
	}
	if backend.Len() != 0 {
		t.Error("poisoned blob not dropped after failed rehydration")
	}
	// Garbage that is not even a checkpoint header behaves the same.
	backend.Put(id, 99, []byte("not a checkpoint"))
	if _, ok := st.Get(id); ok {
		t.Fatal("garbage blob rehydrated")
	}
}

// TestConcurrentRehydrationLastWriterWins pins the two-node convergence
// rule: when two session stores sharing one backend both rehydrate the
// same session (a ring change mid-flight), the eviction that persists
// last wins, and the earlier writer's stale spill is refused by the
// version check instead of clobbering newer state.
func TestConcurrentRehydrationLastWriterWins(t *testing.T) {
	backend := store.NewMem()
	seedStore := newSessionStore(4, 0, backend, 0, true, nil)
	id := seedStore.Add(steppedMachine(t, 10))
	seedStore.SpillAll() // v1 in the store

	nodeA := newSessionStore(4, 0, backend, 0, true, nil)
	nodeB := newSessionStore(4, 0, backend, 0, true, nil)
	sessA, ok := nodeA.Get(id)
	if !ok {
		t.Fatal("node A rehydration failed")
	}
	sessB, ok := nodeB.Get(id)
	if !ok {
		t.Fatal("node B rehydration failed")
	}
	// Node B advances further and spills first: v2 holds B's state.
	sessB.machine.StepN(100)
	wantHash := sessB.machine.StateHash()
	nodeB.SpillAll()
	// Node A's later spill of older state must be refused (ErrStale
	// internally), not clobber B's newer checkpoint.
	sessA.machine.StepN(5)
	nodeA.SpillAll()

	if v, err := backend.Version(id); err != nil || v != 2 {
		t.Fatalf("store version = %d, %v; want 2 (node B's write)", v, err)
	}
	fresh := newSessionStore(4, 0, backend, 0, true, nil)
	sess, ok := fresh.Get(id)
	if !ok {
		t.Fatal("rehydration after the race failed")
	}
	if got := sess.machine.StateHash(); got != wantHash {
		t.Errorf("survivor state hash %#x, want node B's %#x (last writer must win)", got, wantHash)
	}
}

// TestWriteThroughKeepsBlobOnRehydrate pins the authority flip: with
// write-through on, rehydration leaves the blob in the store (another
// node may need it); without, the blob moves (legacy spill semantics).
func TestWriteThroughKeepsBlobOnRehydrate(t *testing.T) {
	for _, wt := range []bool{true, false} {
		backend := store.NewMem()
		st := newSessionStore(4, 0, backend, 0, wt, nil)
		id := st.Add(steppedMachine(t, 5))
		st.SpillAll()
		if _, ok := st.Get(id); !ok {
			t.Fatalf("writeThrough=%v: rehydration failed", wt)
		}
		if kept := backend.Len() == 1; kept != wt {
			t.Errorf("writeThrough=%v: blob kept=%v, want %v", wt, kept, wt)
		}
	}
}

// TestWriteThroughVersionsAreMonotonic pins the WriteThrough counter:
// repeated checkpoints bump the store version, and a session rehydrated
// (or created via AddWithID) on another node adopts the stored version
// so its next write stays monotonic.
func TestWriteThroughVersionsAreMonotonic(t *testing.T) {
	backend := store.NewMem()
	st := newSessionStore(4, 0, backend, 0, true, nil)
	id := st.Add(steppedMachine(t, 5))
	sess, _ := st.Get(id)
	for want := uint64(1); want <= 3; want++ {
		sess.mu.Lock()
		st.WriteThrough(sess, checkpointBytes(t, sess.machine))
		sess.mu.Unlock()
		if v, _ := backend.Version(id); v != want {
			t.Fatalf("after write-through %d: version %d", want, v)
		}
	}
	// A second node creating the same ID (router-driven checkpoint
	// handoff) adopts version 3 and writes 4, not 1.
	other := newSessionStore(4, 0, backend, 0, true, nil)
	if !other.AddWithID(id, steppedMachine(t, 5)) {
		t.Fatal("AddWithID failed")
	}
	sess2, _ := other.Get(id)
	sess2.mu.Lock()
	other.WriteThrough(sess2, checkpointBytes(t, sess2.machine))
	sess2.mu.Unlock()
	if v, _ := backend.Version(id); v != 4 {
		t.Fatalf("handoff write-through version = %d, want 4", v)
	}
}

func checkpointBytes(t testing.TB, m *sim.Machine) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := m.Checkpoint(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestAddWithIDRejectsLiveDuplicate pins the session_exists condition
// the router's create-retry dispatches on.
func TestAddWithIDRejectsLiveDuplicate(t *testing.T) {
	st := newSessionStore(4, 0, store.NewMem(), 0, true, nil)
	if !st.AddWithID("s12345678", testMachine(t)) {
		t.Fatal("first AddWithID failed")
	}
	if st.AddWithID("s12345678", testMachine(t)) {
		t.Fatal("duplicate AddWithID succeeded")
	}
}

// TestColdStartEmptyStore pins the cold-start path: a fresh node over
// an empty shared store serves misses cleanly and allocates IDs from 1.
func TestColdStartEmptyStore(t *testing.T) {
	st := newSessionStore(4, 0, store.NewMem(), 0, true, nil)
	if _, ok := st.Get("s00000007"); ok {
		t.Fatal("empty store produced a session")
	}
	if id := st.Add(testMachine(t)); id != "s00000001" {
		t.Errorf("first ID = %s, want s00000001", id)
	}
}

// TestNextIDResumesPastStoredSessions pins ID allocation across
// restarts: a node joining over a populated store must not reissue IDs
// that stored sessions already use.
func TestNextIDResumesPastStoredSessions(t *testing.T) {
	backend := store.NewMem()
	backend.Put("s00000041", 3, []byte("blob"))
	st := newSessionStore(4, 0, backend, 0, true, nil)
	if id := st.Add(testMachine(t)); id != "s00000042" {
		t.Errorf("first ID = %s, want s00000042", id)
	}
}

// TestSpillFailureCountsLost pins the failure accounting when the
// backend cannot accept the spill.
func TestSpillFailureCountsLost(t *testing.T) {
	backend := store.NewMem()
	backend.FailPuts = fmt.Errorf("volume full")
	st := newSessionStore(4, 0, backend, 0, false, nil)
	st.Add(testMachine(t))
	st.SpillAll()
	if _, _, lost := st.Counters(); lost != 1 {
		t.Errorf("lost = %d, want 1", lost)
	}
}
