package server

import (
	"bytes"
	"container/list"
	"errors"
	"fmt"
	"strconv"
	"sync"
	"time"

	"riscvsim/internal/store"
	"riscvsim/sim"
)

// session is one interactive simulation (web client tab).
type session struct {
	id      string
	mu      sync.Mutex
	machine *sim.Machine
	// gone (guarded by mu) marks a session retired from the store: a
	// handler that looked it up before eviction but locked it after must
	// not mutate the orphaned machine (the spill already captured it) —
	// it re-fetches through the store, rehydrating the spilled copy.
	gone bool
	// version (guarded by mu) is the session's checkpoint-store version
	// counter: the newest version this node knows to be persisted. The
	// next Put writes version+1, so the store's last-writer-wins check
	// can order writes from different nodes (docs/deployment.md).
	version uint64

	// lastUsed is guarded by the owning store's mutex, not session.mu.
	lastUsed time.Time
}

// sessionStore is the interactive session table: an LRU-ordered map with
// a capacity bound and an idle TTL. When the store is full the least
// recently used session is evicted (new users always get a slot); idle
// sessions past the TTL are swept opportunistically on every operation,
// so no janitor goroutine is needed.
//
// With a checkpoint-store backend configured (internal/store; a local
// directory, a shared volume, or the in-memory fake), eviction is no
// longer lossy: the evicted session's machine is checkpointed into the
// backend, and the next touch of its ID transparently rehydrates it
// (also across server restarts, and — when the backend is shared — on a
// different server replica). Without one, evictions drop live sessions
// and are counted as lost.
//
// writeThrough additionally persists every explicit checkpoint into the
// backend, making the backend the authority for the session's state:
// that is the distributed tier's failover contract (a replica dying
// loses at most the work since the last checkpoint). In write-through
// mode rehydration leaves the blob in place — another node may need it —
// where the single-node spill semantics move it (memory <-> store).
//
// Locking: st.mu guards only the in-memory table. Serialization, store
// I/O and machine reconstruction all run outside it (eviction removes
// the session from the table under the lock, then spills it after
// release), so one session's store work never stalls the others. The
// window between removal and the blob appearing can surface as a
// transient miss — the same outcome an eviction always had before
// spilling existed.
type sessionStore struct {
	mu           sync.Mutex
	max          int
	ttl          time.Duration // 0 = no idle expiry
	backend      store.Store   // nil = spilling disabled
	writeThrough bool
	spillTTL     time.Duration // age at which stored blobs are GC'd (0 = never)
	byID         map[string]*list.Element
	lru          *list.List // front = most recent, back = least recent
	nextID       uint64
	now          func() time.Time     // injectable clock for tests
	debugf       func(string, ...any) // debug-level logger (may be nil)
	lastGC       time.Time

	// Lifecycle counters, guarded by mu (served by /api/v1/metrics).
	spilled    uint64
	rehydrated uint64
	lost       uint64
}

func newSessionStore(max int, ttl time.Duration, backend store.Store, spillTTL time.Duration, writeThrough bool, debugf func(string, ...any)) *sessionStore {
	st := &sessionStore{
		max:          max,
		ttl:          ttl,
		backend:      backend,
		writeThrough: writeThrough && backend != nil,
		spillTTL:     spillTTL,
		byID:         make(map[string]*list.Element),
		lru:          list.New(),
		now:          time.Now,
		debugf:       debugf,
	}
	if backend != nil {
		// Resume ID allocation past any checkpoints a previous process
		// left behind, so fresh IDs never collide with stored sessions.
		if entries, err := backend.List(); err == nil {
			for _, e := range entries {
				if !validSessionID(e.ID) {
					continue
				}
				if n, err := strconv.ParseUint(e.ID[1:], 10, 64); err == nil && n > st.nextID {
					st.nextID = n
				}
			}
		}
		st.lastGC = st.now()
		st.gcBackend()
	}
	return st
}

// storeGCInterval bounds how often the opportunistic stored-blob age
// sweep runs.
const storeGCInterval = time.Hour

// validSessionID guards store lookups against malformed IDs: IDs are
// always of the s%08d form (locally generated or router-assigned).
func validSessionID(id string) bool {
	if len(id) != 9 || id[0] != 's' {
		return false
	}
	for i := 1; i < len(id); i++ {
		if id[i] < '0' || id[i] > '9' {
			return false
		}
	}
	return true
}

func (st *sessionStore) logf(format string, args ...any) {
	if st.debugf != nil {
		st.debugf(format, args...)
	}
}

// gcBackend expires stored checkpoints older than spillTTL (backends
// that support age sweeps) so abandoned sessions cannot grow the store
// without bound. Runs at startup and then at most once per
// storeGCInterval, amortized over Add calls; it touches only immutable
// fields, so it needs no lock.
func (st *sessionStore) gcBackend() {
	if st.backend == nil || st.spillTTL <= 0 {
		return
	}
	sweeper, ok := st.backend.(store.Sweeper)
	if !ok {
		return
	}
	if n := sweeper.Sweep(st.spillTTL); n > 0 {
		st.logf("store GC: removed %d blobs (idle > %v)", n, st.spillTTL)
	}
}

// Add stores a new session, evicting the least recently used one if the
// store is at capacity, and returns its ID.
func (st *sessionStore) Add(m *sim.Machine) string {
	st.mu.Lock()
	now := st.now()
	expired := st.sweepLocked(now)
	runGC := st.backend != nil && st.spillTTL > 0 && now.Sub(st.lastGC) > storeGCInterval
	if runGC {
		st.lastGC = now
	}
	evicted := st.makeRoomLocked()
	st.nextID++
	id := fmt.Sprintf("s%08d", st.nextID)
	sess := &session{id: id, machine: m, lastUsed: now}
	st.byID[id] = st.lru.PushFront(sess)
	st.mu.Unlock()

	st.retire(expired, "idle TTL")
	st.retire(evicted, "LRU capacity")
	if runGC {
		st.gcBackend()
	}
	return id
}

// AddWithID stores a new session under a caller-assigned ID (the
// router's consistent-hash deployment assigns IDs so a session's owner
// is computable before it exists; docs/deployment.md). It fails when
// the ID is already live on this node. If the backend already holds a
// blob under the ID, the session adopts its version so later writes
// stay monotonic.
func (st *sessionStore) AddWithID(id string, m *sim.Machine) bool {
	var version uint64
	if st.backend != nil {
		if v, err := st.backend.Version(id); err == nil {
			version = v
		}
	}
	st.mu.Lock()
	now := st.now()
	expired := st.sweepLocked(now)
	if _, exists := st.byID[id]; exists {
		st.mu.Unlock()
		st.retire(expired, "idle TTL")
		return false
	}
	evicted := st.makeRoomLocked()
	sess := &session{id: id, machine: m, lastUsed: now, version: version}
	st.byID[id] = st.lru.PushFront(sess)
	st.mu.Unlock()

	st.retire(expired, "idle TTL")
	st.retire(evicted, "LRU capacity")
	return true
}

// Get looks up a session and marks it most recently used. A session that
// was spilled into the backend (eviction, a previous server process, or
// another replica sharing the store) is transparently rehydrated.
func (st *sessionStore) Get(id string) (*session, bool) {
	st.mu.Lock()
	now := st.now()
	expired := st.sweepLocked(now)
	if el, ok := st.byID[id]; ok {
		sess := el.Value.(*session)
		sess.lastUsed = now
		st.lru.MoveToFront(el)
		st.mu.Unlock()
		st.retire(expired, "idle TTL")
		st.fence(sess)
		return sess, true
	}
	st.mu.Unlock()
	st.retire(expired, "idle TTL")
	return st.rehydrate(id)
}

// fence converges an in-memory session on the store when another node
// has persisted a strictly newer version — the split-brain case where a
// health flap briefly gave two replicas the same session. Without it, a
// replica that fell behind keeps serving (and advancing) stale state it
// rehydrated before the other node's durable checkpoint landed, which
// is client-visible loss of acked progress. Only write-through mode
// fences: there the store is the session's authority by contract, and
// every touch pays one backend.Version probe for it (a map lookup on
// Mem, a readdir on Dir). Equal versions — the common case, the local
// copy simply advanced past its own last checkpoint — pass untouched.
// Transient probe/read/restore failures skip the fence; the next touch
// retries. Un-checkpointed local progress is discarded on adoption,
// which is exactly the tier's durability boundary ("a replica losing a
// session loses at most the work since the last checkpoint").
func (st *sessionStore) fence(sess *session) {
	if !st.writeThrough {
		return
	}
	v, err := st.backend.Version(sess.id)
	if err != nil {
		return
	}
	sess.mu.Lock()
	defer sess.mu.Unlock()
	if v <= sess.version || sess.gone {
		return
	}
	data, v2, err := st.backend.Get(sess.id)
	if err != nil || v2 <= sess.version {
		return
	}
	m, err := sim.Restore(bytes.NewReader(data))
	if err != nil {
		return
	}
	if m.SnapshotInterval() == 0 {
		m.EnableSnapshots(0)
	}
	st.logf("session %s: local copy stale (v%d < store v%d), converging on store state at cycle %d",
		sess.id, sess.version, v2, m.Cycle())
	sess.machine = m
	sess.version = v2
}

// rehydrate restores a stored session from the backend under its
// original ID. Store I/O and machine reconstruction run without the
// store lock; only the table re-insertion takes it.
func (st *sessionStore) rehydrate(id string) (*session, bool) {
	if st.backend == nil || !validSessionID(id) {
		return nil, false
	}
	data, version, err := st.backend.Get(id)
	if err != nil {
		return nil, false
	}
	m, err := sim.Restore(bytes.NewReader(data))
	if err != nil {
		// A bad read may be transient (a torn page, an NFS hiccup, an
		// injected chaos fault) — re-read once before concluding the blob
		// itself is corrupt. Only a reproducible failure deletes it:
		// deleting on a transient fault would turn a recoverable read
		// error into the loss of an acknowledged checkpoint.
		data2, version2, err2 := st.backend.Get(id)
		if err2 == nil {
			m, err = sim.Restore(bytes.NewReader(data2))
			version = version2
		}
		if err != nil {
			st.logf("session %s: stored checkpoint unusable: %v", id, err)
			st.backend.Delete(id)
			return nil, false
		}
	}
	// Interactive sessions keep interval snapshots for O(interval)
	// rewind (see handleSessionNew); re-enable them after rehydration so
	// an eviction/rehydrate cycle does not silently demote backward
	// stepping to a from-zero replay.
	if m.SnapshotInterval() == 0 {
		m.EnableSnapshots(0)
	}

	st.mu.Lock()
	// A concurrent request may have rehydrated the session already; the
	// in-memory copy wins (it may have advanced past our snapshot).
	if el, ok := st.byID[id]; ok {
		sess := el.Value.(*session)
		sess.lastUsed = st.now()
		st.lru.MoveToFront(el)
		st.mu.Unlock()
		return sess, true
	}
	evicted := st.makeRoomLocked()
	sess := &session{id: id, machine: m, lastUsed: st.now(), version: version}
	el := st.lru.PushFront(sess)
	st.byID[id] = el
	st.rehydrated++
	st.mu.Unlock()

	if !st.writeThrough {
		// Single-node spill semantics: the blob moves between memory
		// and store. In write-through mode the store is the authority
		// and the blob stays — another replica may rehydrate it too,
		// with the version check ordering the eventual writes.
		st.backend.Delete(id)
	}
	st.retire(evicted, "LRU capacity")
	st.logf("session %s: rehydrated from store at cycle %d (v%d)", id, m.Cycle(), version)
	return sess, true
}

// WriteThrough persists a just-taken checkpoint of the session into the
// backend at the next version. The caller holds sess.mu (the checkpoint
// handler does), which also guards the version counter. A stale write —
// another node persisted a newer version meanwhile — is not an error:
// last-writer-wins keeps the newer state, and this node's copy will be
// superseded on the next ring-consistent touch.
//
// It reports whether the checkpoint is durably in the store — the
// Durable flag of the checkpoint response, which is what the failover
// contract (and the chaos harness's checkpoint-loss invariant) keys on.
// A stale or failed write returns false: the client's copy of the bytes
// is its only guarantee then.
func (st *sessionStore) WriteThrough(sess *session, data []byte) bool {
	if !st.writeThrough {
		return false
	}
	version := sess.version + 1
	err := st.backend.Put(sess.id, version, data)
	switch {
	case err == nil:
		sess.version = version
		st.mu.Lock()
		st.spilled++
		st.mu.Unlock()
		st.logf("session %s: checkpoint written through at cycle %d (v%d, %d bytes)",
			sess.id, sess.machine.Cycle(), version, len(data))
		return true
	case errors.Is(err, store.ErrStale):
		st.logf("session %s: write-through superseded by a newer store version: %v", sess.id, err)
		// This copy of the session is stale: another node persisted a
		// newer version (a health flap briefly gave two replicas the
		// session). Adopting only the version NUMBER here would be a
		// durability bug — our next checkpoint would carry this node's
		// older machine state under a newer version, silently rolling
		// the store's cycle back past state another client call already
		// got a durable ack for. Converge on the store's copy instead:
		// replace the machine with the newer state. If the read or the
		// restore fails (transient), keep our version unchanged so
		// subsequent writes keep failing stale (acks stay non-durable)
		// and adoption is retried — stale state must never win.
		if data, v, gerr := st.backend.Get(sess.id); gerr == nil && v > sess.version {
			if m, rerr := sim.Restore(bytes.NewReader(data)); rerr == nil {
				if m.SnapshotInterval() == 0 {
					m.EnableSnapshots(0)
				}
				sess.machine = m
				sess.version = v
				st.logf("session %s: converged on store v%d at cycle %d", sess.id, v, m.Cycle())
			}
		}
		return false
	default:
		st.logf("session %s: write-through failed: %v", sess.id, err)
		return false
	}
}

// Remove deletes a session (and any stored copy); it reports whether
// the session existed in memory or in the backend.
func (st *sessionStore) Remove(id string) bool {
	st.mu.Lock()
	el, ok := st.byID[id]
	if ok {
		st.lru.Remove(el)
		delete(st.byID, id)
	}
	st.mu.Unlock()
	if st.backend != nil && validSessionID(id) {
		if _, err := st.backend.Version(id); err == nil {
			st.backend.Delete(id)
			ok = true
		}
	}
	return ok
}

// Len returns the number of live in-memory sessions, sweeping expired
// ones first so an idle server's metrics don't report (or retain) dead
// sessions.
func (st *sessionStore) Len() int {
	st.mu.Lock()
	expired := st.sweepLocked(st.now())
	n := len(st.byID)
	st.mu.Unlock()
	st.retire(expired, "idle TTL")
	return n
}

// Sweep removes idle-expired sessions and returns how many were dropped
// from memory.
func (st *sessionStore) Sweep() int {
	st.mu.Lock()
	expired := st.sweepLocked(st.now())
	st.mu.Unlock()
	st.retire(expired, "idle TTL")
	return len(expired)
}

// SpillAll retires every live session (spilling each into the backend
// when one is configured) and returns how many were processed. It is
// the graceful-shutdown path: a restarted server with the same backend
// rehydrates all of them on their next touch.
func (st *sessionStore) SpillAll() int {
	st.mu.Lock()
	var all []*session
	for el := st.lru.Front(); el != nil; el = el.Next() {
		all = append(all, el.Value.(*session))
	}
	st.lru.Init()
	st.byID = make(map[string]*list.Element)
	st.mu.Unlock()
	st.retire(all, "shutdown")
	return len(all)
}

// Counters returns the lifecycle counters (spilled, rehydrated, lost).
func (st *sessionStore) Counters() (spilled, rehydrated, lost uint64) {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.spilled, st.rehydrated, st.lost
}

// sweepLocked removes sessions idle past the TTL from the table,
// walking from the LRU end (the list is recency-ordered, so it stops at
// the first live one). The removed sessions are returned for the caller
// to retire once the store lock is released.
func (st *sessionStore) sweepLocked(now time.Time) []*session {
	if st.ttl <= 0 {
		return nil
	}
	var expired []*session
	for el := st.lru.Back(); el != nil; {
		sess := el.Value.(*session)
		if now.Sub(sess.lastUsed) < st.ttl {
			break
		}
		prev := el.Prev()
		st.lru.Remove(el)
		delete(st.byID, sess.id)
		expired = append(expired, sess)
		el = prev
	}
	return expired
}

// makeRoomLocked removes least-recently-used sessions from the table
// until an Add fits, returning them for retirement outside the lock.
func (st *sessionStore) makeRoomLocked() []*session {
	var evicted []*session
	for len(st.byID) >= st.max {
		el := st.lru.Back()
		if el == nil {
			break
		}
		st.lru.Remove(el)
		sess := el.Value.(*session)
		delete(st.byID, sess.id)
		evicted = append(evicted, sess)
	}
	return evicted
}

// retire spills each removed session into the backend (or counts it
// lost when spilling is unavailable). It runs WITHOUT the store lock:
// the only locks taken are each session's own mutex (so a handler
// mid-step finishes before serialization and the spill captures its
// result) and a brief store-lock acquisition for the counters. sess.mu
// and st.mu are never held together here, so no ordering cycle exists
// with the handlers' store-then-session order.
func (st *sessionStore) retire(retired []*session, cause string) {
	for _, sess := range retired {
		st.retireOne(sess, cause)
	}
}

func (st *sessionStore) retireOne(sess *session, cause string) {
	if st.backend == nil {
		sess.mu.Lock()
		sess.gone = true
		sess.mu.Unlock()
		st.mu.Lock()
		st.lost++
		st.mu.Unlock()
		st.logf("session %s: evicted (%s) and lost — no checkpoint store", sess.id, cause)
		return
	}
	sess.mu.Lock()
	var buf bytes.Buffer
	err := sess.machine.Checkpoint(&buf)
	cycle := sess.machine.Cycle()
	version := sess.version + 1
	if err == nil {
		err = st.backend.Put(sess.id, version, buf.Bytes())
		if err == nil {
			sess.version = version
		}
	}
	sess.gone = true
	sess.mu.Unlock()
	if errors.Is(err, store.ErrStale) {
		// Another node already persisted a newer version: nothing was
		// lost, the authority simply lives elsewhere now.
		st.logf("session %s: eviction spill superseded by a newer store version (%s)", sess.id, cause)
		return
	}
	st.mu.Lock()
	if err != nil {
		st.lost++
	} else {
		st.spilled++
	}
	st.mu.Unlock()
	if err != nil {
		st.logf("session %s: evicted (%s) and lost — spill failed: %v", sess.id, cause, err)
		return
	}
	st.logf("session %s: spilled to store at cycle %d (%s, v%d, %d bytes)", sess.id, cycle, cause, version, buf.Len())
}
