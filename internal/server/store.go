package server

import (
	"container/list"
	"fmt"
	"sync"
	"time"

	"riscvsim/sim"
)

// session is one interactive simulation (web client tab).
type session struct {
	id      string
	mu      sync.Mutex
	machine *sim.Machine

	// lastUsed is guarded by the owning store's mutex, not session.mu.
	lastUsed time.Time
}

// sessionStore is the interactive session table: an LRU-ordered map with
// a capacity bound and an idle TTL. When the store is full the least
// recently used session is evicted (new users always get a slot); idle
// sessions past the TTL are swept opportunistically on every operation,
// so no janitor goroutine is needed.
type sessionStore struct {
	mu     sync.Mutex
	max    int
	ttl    time.Duration // 0 = no idle expiry
	byID   map[string]*list.Element
	lru    *list.List // front = most recent, back = least recent
	nextID uint64
	now    func() time.Time // injectable clock for tests
}

func newSessionStore(max int, ttl time.Duration) *sessionStore {
	return &sessionStore{
		max:  max,
		ttl:  ttl,
		byID: make(map[string]*list.Element),
		lru:  list.New(),
		now:  time.Now,
	}
}

// Add stores a new session, evicting the least recently used one if the
// store is at capacity, and returns its ID.
func (st *sessionStore) Add(m *sim.Machine) string {
	st.mu.Lock()
	defer st.mu.Unlock()
	now := st.now()
	st.sweepLocked(now)
	for len(st.byID) >= st.max {
		st.evictLRULocked()
	}
	st.nextID++
	id := fmt.Sprintf("s%08d", st.nextID)
	sess := &session{id: id, machine: m, lastUsed: now}
	st.byID[id] = st.lru.PushFront(sess)
	return id
}

// Get looks up a session and marks it most recently used.
func (st *sessionStore) Get(id string) (*session, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.sweepLocked(st.now())
	el, ok := st.byID[id]
	if !ok {
		return nil, false
	}
	sess := el.Value.(*session)
	sess.lastUsed = st.now()
	st.lru.MoveToFront(el)
	return sess, true
}

// Remove deletes a session; it reports whether the session existed.
func (st *sessionStore) Remove(id string) bool {
	st.mu.Lock()
	defer st.mu.Unlock()
	el, ok := st.byID[id]
	if ok {
		st.lru.Remove(el)
		delete(st.byID, id)
	}
	return ok
}

// Len returns the number of live sessions, sweeping expired ones first
// so an idle server's metrics don't report (or retain) dead sessions.
func (st *sessionStore) Len() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.sweepLocked(st.now())
	return len(st.byID)
}

// Sweep removes idle-expired sessions and returns how many were dropped.
func (st *sessionStore) Sweep() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.sweepLocked(st.now())
}

// sweepLocked walks from the LRU end removing sessions idle past the
// TTL. The list is recency-ordered, so it stops at the first live one.
func (st *sessionStore) sweepLocked(now time.Time) int {
	if st.ttl <= 0 {
		return 0
	}
	n := 0
	for el := st.lru.Back(); el != nil; {
		sess := el.Value.(*session)
		if now.Sub(sess.lastUsed) < st.ttl {
			break
		}
		prev := el.Prev()
		st.lru.Remove(el)
		delete(st.byID, sess.id)
		el = prev
		n++
	}
	return n
}

// evictLRULocked drops the least recently used session (store is full).
func (st *sessionStore) evictLRULocked() {
	el := st.lru.Back()
	if el == nil {
		return
	}
	st.lru.Remove(el)
	delete(st.byID, el.Value.(*session).id)
}
