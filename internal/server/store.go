package server

import (
	"bytes"
	"container/list"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"time"

	"riscvsim/sim"
)

// session is one interactive simulation (web client tab).
type session struct {
	id      string
	mu      sync.Mutex
	machine *sim.Machine
	// gone (guarded by mu) marks a session retired from the store: a
	// handler that looked it up before eviction but locked it after must
	// not mutate the orphaned machine (the spill already captured it) —
	// it re-fetches through the store, rehydrating the spilled copy.
	gone bool

	// lastUsed is guarded by the owning store's mutex, not session.mu.
	lastUsed time.Time
}

// sessionStore is the interactive session table: an LRU-ordered map with
// a capacity bound and an idle TTL. When the store is full the least
// recently used session is evicted (new users always get a slot); idle
// sessions past the TTL are swept opportunistically on every operation,
// so no janitor goroutine is needed.
//
// With a spill directory configured, eviction is no longer lossy: the
// evicted session's machine is checkpointed to disk, and the next touch
// of its ID transparently rehydrates it (also across server restarts,
// since the checkpoint format is self-contained). Without one, evictions
// drop live sessions and are counted as lost.
//
// Locking: st.mu guards only the in-memory table. Serialization, file
// I/O and machine reconstruction all run outside it (eviction removes
// the session from the table under the lock, then spills it after
// release), so one session's disk work never stalls the others. The
// window between removal and the spill file appearing can surface as a
// transient miss — the same outcome an eviction always had before
// spilling existed.
type sessionStore struct {
	mu       sync.Mutex
	max      int
	ttl      time.Duration // 0 = no idle expiry
	spillDir string        // "" = spilling disabled
	spillTTL time.Duration // age at which spilled files are GC'd (0 = never)
	byID     map[string]*list.Element
	lru      *list.List // front = most recent, back = least recent
	nextID   uint64
	now      func() time.Time     // injectable clock for tests
	debugf   func(string, ...any) // debug-level logger (may be nil)
	lastGC   time.Time

	// Lifecycle counters, guarded by mu (served by /api/v1/metrics).
	spilled    uint64
	rehydrated uint64
	lost       uint64
}

func newSessionStore(max int, ttl time.Duration, spillDir string, spillTTL time.Duration, debugf func(string, ...any)) *sessionStore {
	st := &sessionStore{
		max:      max,
		ttl:      ttl,
		spillDir: spillDir,
		spillTTL: spillTTL,
		byID:     make(map[string]*list.Element),
		lru:      list.New(),
		now:      time.Now,
		debugf:   debugf,
	}
	if spillDir != "" {
		os.MkdirAll(spillDir, 0o755)
		// Resume ID allocation past any checkpoints a previous process
		// left behind, so fresh IDs never collide with spilled sessions.
		if entries, err := os.ReadDir(spillDir); err == nil {
			for _, e := range entries {
				name := strings.TrimSuffix(e.Name(), spillExt)
				if name == e.Name() || !validSessionID(name) {
					continue
				}
				if n, err := strconv.ParseUint(name[1:], 10, 64); err == nil && n > st.nextID {
					st.nextID = n
				}
			}
		}
		st.lastGC = st.now()
		st.gcSpillDir(st.lastGC)
	}
	return st
}

// spillExt is the on-disk suffix of spilled session checkpoints.
const spillExt = ".ckpt"

// spillGCInterval bounds how often the opportunistic spill-directory
// scan runs.
const spillGCInterval = time.Hour

// validSessionID guards disk lookups against path traversal: IDs are
// always of the generated s%08d form.
func validSessionID(id string) bool {
	if len(id) != 9 || id[0] != 's' {
		return false
	}
	for i := 1; i < len(id); i++ {
		if id[i] < '0' || id[i] > '9' {
			return false
		}
	}
	return true
}

func (st *sessionStore) spillPath(id string) string {
	return filepath.Join(st.spillDir, id+spillExt)
}

func (st *sessionStore) logf(format string, args ...any) {
	if st.debugf != nil {
		st.debugf(format, args...)
	}
}

// gcSpillDir deletes spilled checkpoints older than spillTTL so
// abandoned sessions (spilled by the idle sweep, never touched again)
// cannot grow the directory without bound. Runs at startup and then at
// most once per spillGCInterval, amortized over Add calls; it touches
// only immutable fields, so it needs no lock.
func (st *sessionStore) gcSpillDir(now time.Time) {
	if st.spillDir == "" || st.spillTTL <= 0 {
		return
	}
	entries, err := os.ReadDir(st.spillDir)
	if err != nil {
		return
	}
	for _, e := range entries {
		if !strings.HasSuffix(e.Name(), spillExt) {
			continue
		}
		info, err := e.Info()
		if err != nil {
			continue
		}
		if now.Sub(info.ModTime()) > st.spillTTL {
			if os.Remove(filepath.Join(st.spillDir, e.Name())) == nil {
				st.logf("spill GC: removed %s (idle > %v)", e.Name(), st.spillTTL)
			}
		}
	}
}

// Add stores a new session, evicting the least recently used one if the
// store is at capacity, and returns its ID.
func (st *sessionStore) Add(m *sim.Machine) string {
	st.mu.Lock()
	now := st.now()
	expired := st.sweepLocked(now)
	runGC := st.spillDir != "" && st.spillTTL > 0 && now.Sub(st.lastGC) > spillGCInterval
	if runGC {
		st.lastGC = now
	}
	evicted := st.makeRoomLocked()
	st.nextID++
	id := fmt.Sprintf("s%08d", st.nextID)
	sess := &session{id: id, machine: m, lastUsed: now}
	st.byID[id] = st.lru.PushFront(sess)
	st.mu.Unlock()

	st.retire(expired, "idle TTL")
	st.retire(evicted, "LRU capacity")
	if runGC {
		st.gcSpillDir(now)
	}
	return id
}

// Get looks up a session and marks it most recently used. A session that
// was spilled to disk (eviction or a previous server process) is
// transparently rehydrated.
func (st *sessionStore) Get(id string) (*session, bool) {
	st.mu.Lock()
	now := st.now()
	expired := st.sweepLocked(now)
	if el, ok := st.byID[id]; ok {
		sess := el.Value.(*session)
		sess.lastUsed = now
		st.lru.MoveToFront(el)
		st.mu.Unlock()
		st.retire(expired, "idle TTL")
		return sess, true
	}
	st.mu.Unlock()
	st.retire(expired, "idle TTL")
	return st.rehydrate(id)
}

// rehydrate restores a spilled session from disk under its original ID.
// File I/O and machine reconstruction run without the store lock; only
// the table re-insertion takes it.
func (st *sessionStore) rehydrate(id string) (*session, bool) {
	if st.spillDir == "" || !validSessionID(id) {
		return nil, false
	}
	path := st.spillPath(id)
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, false
	}
	m, err := sim.Restore(bytes.NewReader(data))
	if err != nil {
		st.logf("session %s: spilled checkpoint unusable: %v", id, err)
		os.Remove(path)
		return nil, false
	}
	// Interactive sessions keep interval snapshots for O(interval)
	// rewind (see handleSessionNew); re-enable them after rehydration so
	// an eviction/rehydrate cycle does not silently demote backward
	// stepping to a from-zero replay.
	if m.SnapshotInterval() == 0 {
		m.EnableSnapshots(0)
	}

	st.mu.Lock()
	// A concurrent request may have rehydrated the session already; the
	// in-memory copy wins (it may have advanced past our snapshot).
	if el, ok := st.byID[id]; ok {
		sess := el.Value.(*session)
		sess.lastUsed = st.now()
		st.lru.MoveToFront(el)
		st.mu.Unlock()
		return sess, true
	}
	evicted := st.makeRoomLocked()
	sess := &session{id: id, machine: m, lastUsed: st.now()}
	el := st.lru.PushFront(sess)
	st.byID[id] = el
	st.rehydrated++
	st.mu.Unlock()

	os.Remove(path)
	st.retire(evicted, "LRU capacity")
	st.logf("session %s: rehydrated from spill at cycle %d", id, m.Cycle())
	return sess, true
}

// Remove deletes a session (and any spilled copy); it reports whether
// the session existed in memory or on disk.
func (st *sessionStore) Remove(id string) bool {
	st.mu.Lock()
	el, ok := st.byID[id]
	if ok {
		st.lru.Remove(el)
		delete(st.byID, id)
	}
	st.mu.Unlock()
	if st.spillDir != "" && validSessionID(id) {
		if os.Remove(st.spillPath(id)) == nil {
			ok = true
		}
	}
	return ok
}

// Len returns the number of live in-memory sessions, sweeping expired
// ones first so an idle server's metrics don't report (or retain) dead
// sessions.
func (st *sessionStore) Len() int {
	st.mu.Lock()
	expired := st.sweepLocked(st.now())
	n := len(st.byID)
	st.mu.Unlock()
	st.retire(expired, "idle TTL")
	return n
}

// Sweep removes idle-expired sessions and returns how many were dropped
// from memory.
func (st *sessionStore) Sweep() int {
	st.mu.Lock()
	expired := st.sweepLocked(st.now())
	st.mu.Unlock()
	st.retire(expired, "idle TTL")
	return len(expired)
}

// SpillAll retires every live session (spilling each to disk when a
// spill directory is configured) and returns how many were processed.
// It is the graceful-shutdown path: a restarted server with the same
// spill directory rehydrates all of them on their next touch.
func (st *sessionStore) SpillAll() int {
	st.mu.Lock()
	var all []*session
	for el := st.lru.Front(); el != nil; el = el.Next() {
		all = append(all, el.Value.(*session))
	}
	st.lru.Init()
	st.byID = make(map[string]*list.Element)
	st.mu.Unlock()
	st.retire(all, "shutdown")
	return len(all)
}

// Counters returns the lifecycle counters (spilled, rehydrated, lost).
func (st *sessionStore) Counters() (spilled, rehydrated, lost uint64) {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.spilled, st.rehydrated, st.lost
}

// sweepLocked removes sessions idle past the TTL from the table,
// walking from the LRU end (the list is recency-ordered, so it stops at
// the first live one). The removed sessions are returned for the caller
// to retire once the store lock is released.
func (st *sessionStore) sweepLocked(now time.Time) []*session {
	if st.ttl <= 0 {
		return nil
	}
	var expired []*session
	for el := st.lru.Back(); el != nil; {
		sess := el.Value.(*session)
		if now.Sub(sess.lastUsed) < st.ttl {
			break
		}
		prev := el.Prev()
		st.lru.Remove(el)
		delete(st.byID, sess.id)
		expired = append(expired, sess)
		el = prev
	}
	return expired
}

// makeRoomLocked removes least-recently-used sessions from the table
// until an Add fits, returning them for retirement outside the lock.
func (st *sessionStore) makeRoomLocked() []*session {
	var evicted []*session
	for len(st.byID) >= st.max {
		el := st.lru.Back()
		if el == nil {
			break
		}
		st.lru.Remove(el)
		sess := el.Value.(*session)
		delete(st.byID, sess.id)
		evicted = append(evicted, sess)
	}
	return evicted
}

// retire spills each removed session to disk (or counts it lost when
// spilling is unavailable). It runs WITHOUT the store lock: the only
// locks taken are each session's own mutex (so a handler mid-step
// finishes before serialization and the spill captures its result) and
// a brief store-lock acquisition for the counters. sess.mu and st.mu
// are never held together here, so no ordering cycle exists with the
// handlers' store-then-session order.
func (st *sessionStore) retire(retired []*session, cause string) {
	for _, sess := range retired {
		st.retireOne(sess, cause)
	}
}

func (st *sessionStore) retireOne(sess *session, cause string) {
	if st.spillDir == "" {
		sess.mu.Lock()
		sess.gone = true
		sess.mu.Unlock()
		st.mu.Lock()
		st.lost++
		st.mu.Unlock()
		st.logf("session %s: evicted (%s) and lost — no spill directory", sess.id, cause)
		return
	}
	sess.mu.Lock()
	var buf bytes.Buffer
	err := sess.machine.Checkpoint(&buf)
	cycle := sess.machine.Cycle()
	sess.gone = true
	sess.mu.Unlock()
	if err == nil {
		err = writeFileAtomic(st.spillPath(sess.id), buf.Bytes())
	}
	st.mu.Lock()
	if err != nil {
		st.lost++
	} else {
		st.spilled++
	}
	st.mu.Unlock()
	if err != nil {
		st.logf("session %s: evicted (%s) and lost — spill failed: %v", sess.id, cause, err)
		return
	}
	st.logf("session %s: spilled to disk at cycle %d (%s, %d bytes)", sess.id, cycle, cause, buf.Len())
}

// writeFileAtomic writes via a temp file + rename so a crash mid-write
// never leaves a truncated checkpoint under a valid session ID.
func writeFileAtomic(path string, data []byte) error {
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}
