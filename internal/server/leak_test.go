package server

import (
	"encoding/json"
	"net/http/httptest"
	"runtime"
	"testing"
	"time"

	"riscvsim/internal/api"
	"riscvsim/internal/store"
)

// waitGoroutines polls until the goroutine count drops to at most
// want, failing with full stacks on timeout.
func waitGoroutines(t *testing.T, want int, within time.Duration) {
	t.Helper()
	deadline := time.Now().Add(within)
	for {
		if n := runtime.NumGoroutine(); n <= want {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked: %d running, want <= %d\n%s",
				runtime.NumGoroutine(), want, buf[:n])
		}
		time.Sleep(25 * time.Millisecond)
	}
}

// TestSessionStoreDoesNotLeakGoroutines: a server that churned
// sessions — creation, stepping, checkpointing with write-through,
// eviction-driven spills and rehydrations, admission-controlled
// requests — must hold no goroutines of its own once its HTTP server
// is gone. The session store is deliberately goroutine-free (spill and
// rehydrate run on request goroutines); this pins that property.
func TestSessionStoreDoesNotLeakGoroutines(t *testing.T) {
	before := runtime.NumGoroutine()

	srv := New(Options{
		MaxSessions:  4, // small cap: session churn forces spill/evict cycles
		Store:        store.NewMem(),
		WriteThrough: true,
		MaxInFlight:  2,
		MaxQueue:     2,
		QueueTimeout: 100 * time.Millisecond,
	})
	ts := httptest.NewServer(srv.Handler())

	const prog = "loop: addi t0, t0, 1\nbeq x0, x0, loop\n"
	ids := make([]string, 0, 12)
	for i := 0; i < 12; i++ {
		resp, body := postJSON(t, ts.URL+"/api/v1/session/new", &api.SessionNewRequest{
			SimulateRequest: api.SimulateRequest{Code: prog},
		})
		if resp.StatusCode != 200 {
			t.Fatalf("session/new %d: status %d: %s", i, resp.StatusCode, body)
		}
		var sess api.SessionNewResponse
		if err := json.Unmarshal(body, &sess); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, sess.SessionID)
		if resp, body := postJSON(t, ts.URL+"/api/v1/session/step",
			&api.SessionStepRequest{SessionID: sess.SessionID, Steps: 100}); resp.StatusCode != 200 {
			t.Fatalf("step %d: status %d: %s", i, resp.StatusCode, body)
		}
		if resp, body := postJSON(t, ts.URL+"/api/v1/session/checkpoint",
			&api.SessionCheckpointRequest{SessionID: sess.SessionID}); resp.StatusCode != 200 {
			t.Fatalf("checkpoint %d: status %d: %s", i, resp.StatusCode, body)
		}
	}
	// Touch every session again: with MaxSessions 4, most of these run
	// the spill → rehydrate cycle.
	for _, id := range ids {
		postJSON(t, ts.URL+"/api/v1/session/step", &api.SessionStepRequest{SessionID: id, Steps: 10})
	}

	ts.Close()
	waitGoroutines(t, before, 5*time.Second)
}
