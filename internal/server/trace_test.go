package server

// Tests of the pipeline-trace surface: the SimulateRequest.trace option
// returning the ring buffer in the v1 envelope, the NDJSON
// /api/v1/session/trace stream with its filters, and the paged session
// debug-log endpoint.

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"testing"

	"riscvsim/internal/api"
	"riscvsim/internal/trace"
)

// jsonBody marshals a request document into a POST body.
func jsonBody(t *testing.T, v any) io.Reader {
	t.Helper()
	data, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return bytes.NewReader(data)
}

// traceLoopProgram commits 2 + 3*2 instructions with a loop branch.
const traceLoopProgram = `
addi t0, x0, 0
addi t1, x0, 3
loop:
  addi t0, t0, 1
  bne  t0, t1, loop
`

func TestSimulateWithTraceOption(t *testing.T) {
	_, ts := newTestServer(t)
	resp, body := postJSON(t, ts.URL+"/api/v1/simulate", &api.SimulateRequest{
		Code:  traceLoopProgram,
		Trace: &api.TraceOptions{},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var sr api.SimulateResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	if sr.Trace == nil || len(sr.Trace.Events) == 0 {
		t.Fatalf("no trace in response: %s", body)
	}
	if sr.Trace.Total != uint64(len(sr.Trace.Events)) || sr.Trace.Dropped != 0 {
		t.Errorf("accounting wrong: %d events, total %d, dropped %d",
			len(sr.Trace.Events), sr.Trace.Total, sr.Trace.Dropped)
	}
	commits := 0
	for _, ev := range sr.Trace.Events {
		if ev.Stage == trace.StageCommit {
			commits++
		}
	}
	if commits != 8 {
		t.Errorf("trace shows %d commits, want 8", commits)
	}
}

func TestSimulateTraceStageAndPCFilter(t *testing.T) {
	_, ts := newTestServer(t)
	resp, body := postJSON(t, ts.URL+"/api/v1/simulate", &api.SimulateRequest{
		Code:  traceLoopProgram,
		Trace: &api.TraceOptions{Stages: "commit", PCRange: "2:3"},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var sr api.SimulateResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	if sr.Trace == nil || len(sr.Trace.Events) != 6 {
		t.Fatalf("filtered trace wrong (want the 6 loop-body commits): %+v", sr.Trace)
	}
	for _, ev := range sr.Trace.Events {
		if ev.Stage != trace.StageCommit || ev.PC < 2 || ev.PC > 3 {
			t.Errorf("event escaped the filter: %+v", ev)
		}
	}
}

func TestSimulateTraceLimitBoundsRing(t *testing.T) {
	_, ts := newTestServer(t)
	resp, body := postJSON(t, ts.URL+"/api/v1/simulate", &api.SimulateRequest{
		Code:  traceLoopProgram,
		Trace: &api.TraceOptions{Stages: "commit", Limit: 3},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var sr api.SimulateResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	if sr.Trace == nil || len(sr.Trace.Events) != 3 {
		t.Fatalf("limit ignored: %+v", sr.Trace)
	}
	if sr.Trace.Total != 8 || sr.Trace.Dropped != 5 {
		t.Errorf("accounting: total %d dropped %d, want 8/5", sr.Trace.Total, sr.Trace.Dropped)
	}
	// The ring keeps the newest events: the last commit survives.
	last := sr.Trace.Events[len(sr.Trace.Events)-1]
	if last.PC != 3 {
		t.Errorf("newest surviving commit at pc %d, want the final branch at 3", last.PC)
	}
}

func TestSimulateTraceBadOptions(t *testing.T) {
	_, ts := newTestServer(t)
	for _, opts := range []*api.TraceOptions{
		{Stages: "bogus"},
		{PCRange: "9:3"},
		{Limit: api.MaxTraceLimit + 1},
	} {
		resp, body := postJSON(t, ts.URL+"/api/v1/simulate", &api.SimulateRequest{
			Code: traceLoopProgram, Trace: opts,
		})
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("opts %+v: status %d, want 400: %s", opts, resp.StatusCode, body)
		}
		if env := decodeErrorEnvelope(t, body); env.Code != api.CodeBadTrace {
			t.Errorf("opts %+v: code %q, want %q", opts, env.Code, api.CodeBadTrace)
		}
	}
}

func TestSessionTraceStreamNDJSON(t *testing.T) {
	_, ts := newTestServer(t)
	resp, err := http.Post(ts.URL+"/api/v1/session/trace", "application/json",
		jsonBody(t, &api.TraceStreamRequest{
			SimulateRequest: api.SimulateRequest{
				Code:  traceLoopProgram,
				Trace: &api.TraceOptions{Stages: "commit"},
			},
		}))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != api.MediaTypeNDJSON {
		t.Errorf("Content-Type = %q", ct)
	}
	var events []api.TraceStreamEvent
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var ev api.TraceStreamEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		events = append(events, ev)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(events) != 9 { // 8 commits + summary
		t.Fatalf("got %d lines, want 9: %+v", len(events), events)
	}
	for i, ev := range events[:8] {
		if ev.Seq != i || ev.Event == nil || ev.Event.Stage != trace.StageCommit {
			t.Errorf("line %d wrong: %+v", i, ev)
		}
	}
	final := events[8]
	if !final.Done || !final.Halted || final.Total != 8 || final.Truncated {
		t.Errorf("summary wrong: %+v", final)
	}
}

func TestSessionTraceStreamMaxEventsTruncates(t *testing.T) {
	_, ts := newTestServer(t)
	resp, err := http.Post(ts.URL+"/api/v1/session/trace", "application/json",
		jsonBody(t, &api.TraceStreamRequest{
			SimulateRequest: api.SimulateRequest{
				Code:  traceLoopProgram,
				Trace: &api.TraceOptions{Stages: "commit"},
			},
			MaxEvents: 2,
		}))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var events []api.TraceStreamEvent
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var ev api.TraceStreamEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatal(err)
		}
		events = append(events, ev)
	}
	if len(events) != 3 {
		t.Fatalf("got %d lines, want 2 events + summary", len(events))
	}
	final := events[2]
	if !final.Done || !final.Truncated || !final.Halted {
		t.Errorf("truncated summary wrong: %+v", final)
	}
	// Total stays exact past the cap: the run keeps counting untraced.
	if final.Total != 8 {
		t.Errorf("summary total = %d, want the exact 8 commits", final.Total)
	}
}

func TestSessionTraceStreamBadOptions(t *testing.T) {
	_, ts := newTestServer(t)
	for _, opts := range []*api.TraceOptions{
		{Stages: "warp"},
		{Limit: api.MaxTraceLimit + 1},
	} {
		resp, err := http.Post(ts.URL+"/api/v1/session/trace", "application/json",
			jsonBody(t, &api.TraceStreamRequest{
				SimulateRequest: api.SimulateRequest{Code: traceLoopProgram, Trace: opts},
			}))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("opts %+v: status %d, want 400 (stream must validate like /simulate)",
				opts, resp.StatusCode)
		}
	}
}

func TestSessionTraceStreamHonorsLimit(t *testing.T) {
	_, ts := newTestServer(t)
	resp, err := http.Post(ts.URL+"/api/v1/session/trace", "application/json",
		jsonBody(t, &api.TraceStreamRequest{
			SimulateRequest: api.SimulateRequest{
				Code:  traceLoopProgram,
				Trace: &api.TraceOptions{Stages: "commit", Limit: 3},
			},
		}))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var lines []api.TraceStreamEvent
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var ev api.TraceStreamEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatal(err)
		}
		lines = append(lines, ev)
	}
	if len(lines) != 4 { // 3 capped events + summary
		t.Fatalf("got %d lines, want 3 events + summary", len(lines))
	}
	if final := lines[3]; !final.Done || !final.Truncated || final.Total != 8 {
		t.Errorf("summary should report truncation with an exact total: %+v", final)
	}
}

// mispredictProgram writes flush lines into the debug log.
const mispredictProgram = `
  addi t0, x0, 0
  addi t1, x0, 32
loop:
  addi t0, t0, 1
  andi t2, t0, 1
  bne  t2, x0, odd
  addi t3, x0, 7
odd:
  bne  t0, t1, loop
`

func TestSessionLogPaging(t *testing.T) {
	_, ts := newTestServer(t)
	resp, body := postJSON(t, ts.URL+"/api/v1/session/new", &api.SessionNewRequest{
		// Verbose: flush lines are only formatted when asked for.
		SimulateRequest: api.SimulateRequest{Code: mispredictProgram, Verbose: true},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("session/new: %d %s", resp.StatusCode, body)
	}
	var sn api.SessionNewResponse
	if err := json.Unmarshal(body, &sn); err != nil {
		t.Fatal(err)
	}
	step := func(n int64) {
		resp, body := postJSON(t, ts.URL+"/api/v1/session/step",
			&api.SessionStepRequest{SessionID: sn.SessionID, Steps: n})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("step: %d %s", resp.StatusCode, body)
		}
	}
	getLog := func(since uint64) *api.SessionLogResponse {
		hresp, err := http.Get(fmt.Sprintf("%s/api/v1/session/%s/log?since_cycle=%d",
			ts.URL, sn.SessionID, since))
		if err != nil {
			t.Fatal(err)
		}
		defer hresp.Body.Close()
		if hresp.StatusCode != http.StatusOK {
			t.Fatalf("log: status %d", hresp.StatusCode)
		}
		var lr api.SessionLogResponse
		if err := json.NewDecoder(hresp.Body).Decode(&lr); err != nil {
			t.Fatal(err)
		}
		return &lr
	}

	step(40)
	first := getLog(0)
	if len(first.Entries) == 0 {
		t.Fatal("no log entries after 40 cycles of a mispredicting loop")
	}
	if first.NextCycle != first.Cycle+1 {
		t.Errorf("nextCycle = %d, want cycle+1 = %d", first.NextCycle, first.Cycle+1)
	}
	// Paging from NextCycle returns nothing new until the machine moves.
	if again := getLog(first.NextCycle); len(again.Entries) != 0 {
		t.Errorf("idle page returned %d entries", len(again.Entries))
	}
	step(200)
	second := getLog(first.NextCycle)
	if len(second.Entries) == 0 {
		t.Fatal("no new entries after stepping further")
	}
	for _, e := range second.Entries {
		if e.Cycle < first.NextCycle {
			t.Errorf("page leaked an old entry from cycle %d (since %d)", e.Cycle, first.NextCycle)
		}
	}
	// The two pages together equal a full fetch.
	full := getLog(0)
	if got, want := len(first.Entries)+len(second.Entries), len(full.Entries); got != want {
		t.Errorf("pages sum to %d entries, full log has %d", got, want)
	}
}

func TestSessionLogUnknownSession(t *testing.T) {
	_, ts := newTestServer(t)
	hresp, err := http.Get(ts.URL + "/api/v1/session/nope/log")
	if err != nil {
		t.Fatal(err)
	}
	defer hresp.Body.Close()
	if hresp.StatusCode != http.StatusNotFound {
		t.Errorf("status %d, want 404", hresp.StatusCode)
	}
}

func TestSessionLogBadSinceCycle(t *testing.T) {
	_, ts := newTestServer(t)
	hresp, err := http.Get(ts.URL + "/api/v1/session/x/log?since_cycle=banana")
	if err != nil {
		t.Fatal(err)
	}
	defer hresp.Body.Close()
	if hresp.StatusCode != http.StatusBadRequest {
		t.Errorf("status %d, want 400", hresp.StatusCode)
	}
}
