package server

// Tests of the checkpoint surface: /api/v1/session/{checkpoint,restore},
// transparent spill-to-disk on eviction with rehydration on the next
// touch (including across a server restart), checkpoint-forked batches,
// and the stable checkpoint error codes.

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"testing"
	"time"

	"riscvsim/internal/api"
	"riscvsim/internal/ckpt"
	"riscvsim/sim"
)

// spillProgram runs long enough that sessions are still live mid-run.
const spillProgram = `
	li   t0, 2000
loop:
	addi t0, t0, -1
	bne  t0, x0, loop
	ret
`

func newSpillServer(t *testing.T, opts Options) (*Server, *httptest.Server) {
	t.Helper()
	srv := New(opts)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

func openSession(t *testing.T, url, code string) string {
	t.Helper()
	resp, body := postJSON(t, url+"/api/v1/session/new", &api.SessionNewRequest{
		SimulateRequest: api.SimulateRequest{Code: code},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("session/new: status %d: %s", resp.StatusCode, body)
	}
	var sr api.SessionNewResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	return sr.SessionID
}

func stepSession(t *testing.T, url, id string, steps int64) (*api.SessionStateResponse, *http.Response, []byte) {
	t.Helper()
	resp, body := postJSON(t, url+"/api/v1/session/step", &api.SessionStepRequest{SessionID: id, Steps: steps})
	if resp.StatusCode != http.StatusOK {
		return nil, resp, body
	}
	var sr api.SessionStateResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	return &sr, resp, body
}

func TestSessionCheckpointRestoreEndpoints(t *testing.T) {
	_, ts := newTestServer(t)
	id := openSession(t, ts.URL, spillProgram)
	if st, _, body := stepSession(t, ts.URL, id, 500); st == nil {
		t.Fatalf("step: %s", body)
	}

	resp, body := postJSON(t, ts.URL+"/api/v1/session/checkpoint", &api.SessionCheckpointRequest{SessionID: id})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("checkpoint: status %d: %s", resp.StatusCode, body)
	}
	var cp api.SessionCheckpointResponse
	if err := json.Unmarshal(body, &cp); err != nil {
		t.Fatal(err)
	}
	if cp.Cycle != 500 || len(cp.Checkpoint) == 0 {
		t.Fatalf("checkpoint response: cycle=%d, %d bytes", cp.Cycle, len(cp.Checkpoint))
	}

	resp, body = postJSON(t, ts.URL+"/api/v1/session/restore", &api.SessionRestoreRequest{Checkpoint: cp.Checkpoint})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("restore: status %d: %s", resp.StatusCode, body)
	}
	var nr api.SessionNewResponse
	if err := json.Unmarshal(body, &nr); err != nil {
		t.Fatal(err)
	}
	if nr.SessionID == id {
		t.Error("restore must open a fresh session")
	}
	if nr.State.Cycle != 500 {
		t.Errorf("restored session at cycle %d, want 500", nr.State.Cycle)
	}

	// The original and the restored session stay in lockstep.
	s1, _, _ := stepSession(t, ts.URL, id, 250)
	s2, _, _ := stepSession(t, ts.URL, nr.SessionID, 250)
	j1, _ := json.Marshal(s1.State)
	j2, _ := json.Marshal(s2.State)
	if !bytes.Equal(j1, j2) {
		t.Error("restored session diverged from the original")
	}
}

func TestSessionSpillAndRehydrateOnEviction(t *testing.T) {
	opts := DefaultOptions()
	opts.MaxSessions = 1
	opts.SpillDir = t.TempDir()
	srv, ts := newSpillServer(t, opts)

	a := openSession(t, ts.URL, spillProgram)
	if st, _, body := stepSession(t, ts.URL, a, 300); st == nil {
		t.Fatalf("step: %s", body)
	}

	// Opening a second session evicts (and spills) the first.
	b := openSession(t, ts.URL, spillProgram)
	if spilled, _, _ := srv.store.Counters(); spilled != 1 {
		t.Fatalf("sessions_spilled = %d, want 1", spilled)
	}

	// Touching the first session rehydrates it transparently, with its
	// cycle position intact (this in turn evicts and spills the second).
	st, _, body := stepSession(t, ts.URL, a, 100)
	if st == nil {
		t.Fatalf("step after eviction: %s", body)
	}
	if st.State.Cycle != 400 {
		t.Errorf("rehydrated session at cycle %d, want 400", st.State.Cycle)
	}
	spilled, rehydrated, lost := srv.store.Counters()
	if rehydrated != 1 || lost != 0 || spilled < 2 {
		t.Errorf("counters: spilled=%d rehydrated=%d lost=%d", spilled, rehydrated, lost)
	}
	// An eviction/rehydrate cycle must not demote the session's rewind
	// acceleration: interval snapshots are re-enabled on rehydration.
	if sess, ok := srv.store.Get(a); !ok {
		t.Error("rehydrated session missing from store")
	} else if sess.machine.SnapshotInterval() == 0 {
		t.Error("rehydrated session lost interval snapshots; backward steps replay from cycle 0")
	}
	_ = b
}

func TestSessionSurvivesServerRestart(t *testing.T) {
	dir := t.TempDir()
	opts := DefaultOptions()
	opts.SpillDir = dir

	srv1, ts1 := newSpillServer(t, opts)
	id := openSession(t, ts1.URL, spillProgram)
	if st, _, body := stepSession(t, ts1.URL, id, 700); st == nil {
		t.Fatalf("step: %s", body)
	}
	if n := srv1.SpillSessions(); n != 1 {
		t.Fatalf("SpillSessions = %d, want 1", n)
	}
	ts1.Close()

	// A fresh server process over the same spill directory picks the
	// session up exactly where it was.
	_, ts2 := newSpillServer(t, opts)
	st, _, body := stepSession(t, ts2.URL, id, 50)
	if st == nil {
		t.Fatalf("step after restart: %s", body)
	}
	if st.State.Cycle != 750 {
		t.Errorf("session resumed at cycle %d, want 750", st.State.Cycle)
	}
}

func TestRestartDoesNotReuseSpilledSessionIDs(t *testing.T) {
	dir := t.TempDir()
	opts := DefaultOptions()
	opts.SpillDir = dir

	srv1, ts1 := newSpillServer(t, opts)
	id := openSession(t, ts1.URL, spillProgram)
	srv1.SpillSessions()
	ts1.Close()

	_, ts2 := newSpillServer(t, opts)
	id2 := openSession(t, ts2.URL, spillProgram)
	if id2 == id {
		t.Fatalf("restarted server reissued session ID %s over a spilled session", id)
	}
}

func TestEvictionWithoutSpillDirCountsLost(t *testing.T) {
	opts := DefaultOptions()
	opts.MaxSessions = 1
	srv, ts := newSpillServer(t, opts)
	openSession(t, ts.URL, spillProgram)
	openSession(t, ts.URL, spillProgram) // evicts the first, unspillable
	if _, _, lost := srv.store.Counters(); lost != 1 {
		t.Errorf("sessions_lost = %d, want 1", lost)
	}
	var m api.Metrics
	resp, err := http.Get(ts.URL + "/api/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	if m.SessionsLost != 1 {
		t.Errorf("metrics sessions_lost = %d, want 1", m.SessionsLost)
	}
}

func TestBatchForksFromBaseCheckpoint(t *testing.T) {
	_, ts := newTestServer(t)

	// Build the warm prefix locally and snapshot it.
	m, err := sim.NewFromAsm(sim.DefaultConfig(), spillProgram, "")
	if err != nil {
		t.Fatal(err)
	}
	m.StepN(1000)
	if m.Halted() {
		t.Fatal("warm-up halted")
	}
	var base bytes.Buffer
	if err := m.Checkpoint(&base); err != nil {
		t.Fatal(err)
	}

	req := &api.BatchRequest{
		BaseCheckpoint: base.Bytes(),
		Requests: []api.SimulateRequest{
			{Steps: 10}, {Steps: 20}, {Steps: 0},
		},
	}
	resp, body := postJSON(t, ts.URL+"/api/v1/batch", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch: status %d: %s", resp.StatusCode, body)
	}
	var br api.BatchResponse
	if err := json.Unmarshal(body, &br); err != nil {
		t.Fatal(err)
	}
	if br.Succeeded != 3 {
		t.Fatalf("batch: %d/%d succeeded: %s", br.Succeeded, len(br.Results), body)
	}
	// Every fork starts at the checkpoint's cycle, not zero.
	if got := br.Results[0].Response.Cycles; got != 1010 {
		t.Errorf("fork 0 ended at cycle %d, want 1010", got)
	}
	if got := br.Results[1].Response.Cycles; got != 1020 {
		t.Errorf("fork 1 ended at cycle %d, want 1020", got)
	}
	if last := br.Results[2].Response; !last.Halted || last.Cycles <= 1000 {
		t.Errorf("fork 2 should run from cycle 1000 to completion, got halted=%v cycle=%d",
			last.Halted, last.Cycles)
	}
}

func TestCheckpointEndpointErrorCodes(t *testing.T) {
	_, ts := newTestServer(t)

	// A valid checkpoint to corrupt.
	m, err := sim.NewFromAsm(sim.DefaultConfig(), spillProgram, "")
	if err != nil {
		t.Fatal(err)
	}
	m.StepN(100)
	var buf bytes.Buffer
	if err := m.Checkpoint(&buf); err != nil {
		t.Fatal(err)
	}
	valid := buf.Bytes()

	badMagic := append([]byte(nil), valid...)
	copy(badMagic, "XXXX")
	badVersion := append([]byte(nil), valid...)
	badVersion[4] = 99
	badHash := append([]byte(nil), valid...)
	badHash[20] ^= 0xFF

	cases := []struct {
		name     string
		ckpt     []byte
		wantCode string
		wantHTTP int
	}{
		{"bad magic", badMagic, api.CodeBadCheckpoint, http.StatusBadRequest},
		{"newer version", badVersion, api.CodeCheckpointVersion, http.StatusUnprocessableEntity},
		{"config hash mismatch", badHash, api.CodeCheckpointConfig, http.StatusUnprocessableEntity},
		{"truncated", valid[:len(valid)/3], api.CodeCheckpointTruncated, http.StatusBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, body := postJSON(t, ts.URL+"/api/v1/session/restore",
				&api.SessionRestoreRequest{Checkpoint: tc.ckpt})
			if resp.StatusCode != tc.wantHTTP {
				t.Errorf("status %d, want %d: %s", resp.StatusCode, tc.wantHTTP, body)
			}
			if env := decodeErrorEnvelope(t, body); env.Code != tc.wantCode {
				t.Errorf("code %q, want %q", env.Code, tc.wantCode)
			}
		})
	}

	// The same codes surface through checkpoint-carrying batch entries.
	resp, body := postJSON(t, ts.URL+"/api/v1/batch", &api.BatchRequest{
		BaseCheckpoint: badMagic,
		Requests:       []api.SimulateRequest{{Steps: 1}},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch transport: %d: %s", resp.StatusCode, body)
	}
	var br api.BatchResponse
	if err := json.Unmarshal(body, &br); err != nil {
		t.Fatal(err)
	}
	if br.Failed != 1 || br.Results[0].Error == nil || br.Results[0].Error.Code != api.CodeBadCheckpoint {
		t.Errorf("batch entry error: %+v", br.Results[0])
	}
}

func TestStoreTTLSweepSpills(t *testing.T) {
	st := newSessionStore(8, time.Minute, dirStore(t, t.TempDir()), 0, false, nil)
	m, err := sim.NewFromAsm(sim.DefaultConfig(), spillProgram, "")
	if err != nil {
		t.Fatal(err)
	}
	m.StepN(123)
	base := time.Now()
	st.now = func() time.Time { return base }
	id := st.Add(m)
	// Idle past the TTL: the sweep spills rather than drops.
	st.now = func() time.Time { return base.Add(2 * time.Minute) }
	if n := st.Sweep(); n != 1 {
		t.Fatalf("swept %d, want 1", n)
	}
	if spilled, _, _ := st.Counters(); spilled != 1 {
		t.Fatalf("spilled = %d, want 1", spilled)
	}
	sess, ok := st.Get(id)
	if !ok {
		t.Fatal("idle-expired session did not rehydrate")
	}
	if got := sess.machine.Cycle(); got != 123 {
		t.Errorf("rehydrated at cycle %d, want 123", got)
	}
}

// TestRetiredSessionIsMarkedGone pins the eviction race mechanism: a
// handler that looked a session up before eviction must observe gone
// after locking, re-fetch, and receive the rehydrated copy instead of
// mutating the orphaned machine (whose state the spill already holds).
func TestRetiredSessionIsMarkedGone(t *testing.T) {
	st := newSessionStore(1, 0, dirStore(t, t.TempDir()), 0, false, nil)
	m, err := sim.NewFromAsm(sim.DefaultConfig(), spillProgram, "")
	if err != nil {
		t.Fatal(err)
	}
	id := st.Add(m)
	sess, ok := st.Get(id)
	if !ok {
		t.Fatal("session missing")
	}

	// Another session arrives; capacity 1 evicts (and spills) ours while
	// the "handler" still holds its pointer.
	m2, err := sim.NewFromAsm(sim.DefaultConfig(), spillProgram, "")
	if err != nil {
		t.Fatal(err)
	}
	st.Add(m2)

	sess.mu.Lock()
	gone := sess.gone
	sess.mu.Unlock()
	if !gone {
		t.Fatal("retired session not marked gone")
	}
	fresh, ok := st.Get(id)
	if !ok {
		t.Fatal("spilled session did not rehydrate")
	}
	if fresh == sess {
		t.Fatal("Get returned the retired session object")
	}
	fresh.mu.Lock()
	defer fresh.mu.Unlock()
	if fresh.gone {
		t.Fatal("rehydrated session marked gone")
	}
}

// TestSpillDirGarbageCollection pins the unbounded-growth fix: spilled
// checkpoints older than SpillTTL are removed at store startup.
func TestSpillDirGarbageCollection(t *testing.T) {
	dir := t.TempDir()
	stale := dir + "/s00000001.ckpt"
	freshFile := dir + "/s00000002.ckpt"
	for _, p := range []string{stale, freshFile} {
		if err := os.WriteFile(p, []byte("x"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	old := time.Now().Add(-48 * time.Hour)
	if err := os.Chtimes(stale, old, old); err != nil {
		t.Fatal(err)
	}
	newSessionStore(4, 0, dirStore(t, dir), 24*time.Hour, false, nil)
	if _, err := os.ReadFile(stale); err == nil {
		t.Error("stale spill file survived GC")
	}
	if _, err := os.ReadFile(freshFile); err != nil {
		t.Error("fresh spill file was GC'd")
	}
}

// errTruncSanity pins the sentinel mapping the handlers rely on.
func TestCheckpointErrorMapping(t *testing.T) {
	if api.CheckpointError(ckpt.ErrTruncated).Code != api.CodeCheckpointTruncated {
		t.Error("ErrTruncated mapping")
	}
	if api.CheckpointError(ckpt.ErrBadMagic).Code != api.CodeBadCheckpoint {
		t.Error("ErrBadMagic mapping")
	}
}
