// Package server implements the simulation server: an HTTP JSON API that
// carries all simulator logic server-side, exactly like the paper's
// client–server split (§III). The web client and the CLI both speak this
// protocol. Responses are gzip-compressed when the client accepts it
// (gzip raised the paper's measured throughput by 40%, §IV-A).
//
// The server instruments its own request handling: it records the share of
// time spent encoding/decoding JSON versus total handling time, which the
// paper profiles at "about 60% of the request handling time" (§IV-A); see
// the /metrics endpoint and the E2 bench.
package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"riscvsim/internal/isa"
	"riscvsim/sim"
)

// Options configures the server.
type Options struct {
	// MaxSessions bounds the interactive session store.
	MaxSessions int
	// MaxBodyBytes bounds request bodies.
	MaxBodyBytes int64
	// DisableGzip turns off response compression (for the E3 bench).
	DisableGzip bool
}

// DefaultOptions returns production defaults.
func DefaultOptions() Options {
	return Options{MaxSessions: 256, MaxBodyBytes: 4 << 20}
}

// Metrics aggregates the server's self-instrumentation.
type Metrics struct {
	Requests       uint64  `json:"requests"`
	TotalNanos     uint64  `json:"totalHandlingNanos"`
	JSONNanos      uint64  `json:"jsonNanos"`
	SimNanos       uint64  `json:"simulationNanos"`
	JSONShare      float64 `json:"jsonShare"`
	ActiveSessions int     `json:"activeSessions"`
}

// Server is the simulation server.
type Server struct {
	opts Options
	mux  *http.ServeMux

	mu       sync.Mutex
	sessions map[string]*session
	nextID   uint64

	// instrumentation counters (atomics: handlers run concurrently)
	reqCount atomic.Uint64
	totalNs  atomic.Uint64
	jsonNs   atomic.Uint64
	simNs    atomic.Uint64
}

// session is one interactive simulation (web client tab).
type session struct {
	mu       sync.Mutex
	machine  *sim.Machine
	lastUsed time.Time
}

// New builds a server.
func New(opts Options) *Server {
	if opts.MaxSessions <= 0 {
		opts.MaxSessions = 256
	}
	if opts.MaxBodyBytes <= 0 {
		opts.MaxBodyBytes = 4 << 20
	}
	s := &Server{
		opts:     opts,
		mux:      http.NewServeMux(),
		sessions: make(map[string]*session),
	}
	s.mux.HandleFunc("/simulate", s.wrap(s.handleSimulate))
	s.mux.HandleFunc("/compile", s.wrap(s.handleCompile))
	s.mux.HandleFunc("/parseAsm", s.wrap(s.handleParseAsm))
	s.mux.HandleFunc("/checkConfig", s.wrap(s.handleCheckConfig))
	s.mux.HandleFunc("/schema", s.wrap(s.handleSchema))
	s.mux.HandleFunc("/instructionDescriptions", s.handleInstructionDescriptions)
	s.mux.HandleFunc("/session/new", s.wrap(s.handleSessionNew))
	s.mux.HandleFunc("/session/step", s.wrap(s.handleSessionStep))
	s.mux.HandleFunc("/session/goto", s.wrap(s.handleSessionGoto))
	s.mux.HandleFunc("/session/close", s.wrap(s.handleSessionClose))
	s.mux.HandleFunc("/session/render", s.wrap(s.handleSessionRender))
	s.mux.HandleFunc("/metrics", s.wrap(s.handleMetrics))
	s.mux.HandleFunc("/health", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})
	return s
}

// Handler returns the HTTP handler (with gzip support).
func (s *Server) Handler() http.Handler {
	if s.opts.DisableGzip {
		return s.mux
	}
	return gzipMiddleware(s.mux)
}

// Metrics returns the accumulated instrumentation.
func (s *Server) Metrics() Metrics {
	s.mu.Lock()
	active := len(s.sessions)
	s.mu.Unlock()
	m := Metrics{
		Requests:       s.reqCount.Load(),
		TotalNanos:     s.totalNs.Load(),
		JSONNanos:      s.jsonNs.Load(),
		SimNanos:       s.simNs.Load(),
		ActiveSessions: active,
	}
	if m.TotalNanos > 0 {
		m.JSONShare = float64(m.JSONNanos) / float64(m.TotalNanos)
	}
	return m
}

// ResetMetrics clears the counters (benchmark harness).
func (s *Server) ResetMetrics() {
	s.reqCount.Store(0)
	s.totalNs.Store(0)
	s.jsonNs.Store(0)
	s.simNs.Store(0)
}

// apiError is the JSON error envelope.
type apiError struct {
	Error string `json:"error"`
}

// handlerFunc handles a decoded request and returns a response value to
// encode, or an error with an HTTP status.
type handlerFunc func(w http.ResponseWriter, r *http.Request) (any, int, error)

// wrap adds timing instrumentation and JSON envelope handling.
func (s *Server) wrap(h handlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		resp, status, err := h(w, r)
		if err != nil {
			resp = apiError{Error: err.Error()}
			if status == 0 {
				status = http.StatusBadRequest
			}
		} else if status == 0 {
			status = http.StatusOK
		}
		jstart := time.Now()
		body, merr := json.Marshal(resp)
		s.jsonNs.Add(uint64(time.Since(jstart)))
		if merr != nil {
			status = http.StatusInternalServerError
			body = []byte(`{"error":"response encoding failed"}`)
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(status)
		w.Write(body)
		s.reqCount.Add(1)
		s.totalNs.Add(uint64(time.Since(start)))
	}
}

// decode reads a JSON request body with instrumentation.
func (s *Server) decode(r *http.Request, into any) error {
	body, err := io.ReadAll(io.LimitReader(r.Body, s.opts.MaxBodyBytes))
	if err != nil {
		return fmt.Errorf("reading request: %w", err)
	}
	jstart := time.Now()
	err = json.Unmarshal(body, into)
	s.jsonNs.Add(uint64(time.Since(jstart)))
	if err != nil {
		return fmt.Errorf("bad JSON request: %w", err)
	}
	return nil
}

// ---------------------------------------------------------------------------
// Request/response types (the JSON API contract)
// ---------------------------------------------------------------------------

// MemFill populates a labelled allocation before simulation, mirroring the
// Memory Settings window (user values, repeated constants or random
// values; paper §II-C).
type MemFill struct {
	Label    string  `json:"label"`
	Values   []int64 `json:"values,omitempty"`
	ElemSize int     `json:"elemSize,omitempty"` // 1, 2, 4 or 8; default 4
	Repeat   int     `json:"repeat,omitempty"`   // repeat Values[0] n times
	Random   int     `json:"random,omitempty"`   // n random values
	Seed     int64   `json:"seed,omitempty"`     // deterministic seed
}

// SimulateRequest runs a batch simulation.
type SimulateRequest struct {
	// Code is RISC-V assembly, or C when Language == "c".
	Code     string `json:"code"`
	Language string `json:"language,omitempty"`
	Optimize int    `json:"optimize,omitempty"`
	// Entry is the entry label ("" = first instruction / main for C).
	Entry string `json:"entry,omitempty"`
	// Preset selects a named architecture; Config overrides it with a
	// full architecture document.
	Preset string           `json:"preset,omitempty"`
	Config *json.RawMessage `json:"config,omitempty"`
	// Steps limits the simulation (0 = run to completion).
	Steps uint64 `json:"steps,omitempty"`
	// MemFills populate data arrays before the run.
	MemFills []MemFill `json:"memFills,omitempty"`
	// IncludeState requests the full processor snapshot.
	IncludeState bool `json:"includeState,omitempty"`
	// IncludeLog requests the debug log.
	IncludeLog bool `json:"includeLog,omitempty"`
}

// SimulateResponse carries results.
type SimulateResponse struct {
	Halted     bool           `json:"halted"`
	HaltReason string         `json:"haltReason,omitempty"`
	Cycles     uint64         `json:"cycles"`
	Stats      *sim.Report    `json:"stats"`
	State      *sim.State     `json:"state,omitempty"`
	Log        []sim.LogEntry `json:"log,omitempty"`
}

// buildMachine constructs a machine from request fields.
func (s *Server) buildMachine(req *SimulateRequest) (*sim.Machine, error) {
	cfg := sim.DefaultConfig()
	if req.Preset != "" {
		p, ok := sim.Presets()[req.Preset]
		if !ok {
			return nil, fmt.Errorf("unknown preset %q", req.Preset)
		}
		cfg = p
	}
	if req.Config != nil {
		c, err := sim.ImportConfig(*req.Config)
		if err != nil {
			return nil, err
		}
		cfg = c
	}
	var m *sim.Machine
	var err error
	if strings.EqualFold(req.Language, "c") {
		m, err = sim.NewFromC(cfg, req.Code, req.Optimize)
	} else {
		m, err = sim.NewFromAsm(cfg, req.Code, req.Entry)
	}
	if err != nil {
		return nil, err
	}
	for _, f := range req.MemFills {
		if err := applyMemFill(m, f); err != nil {
			return nil, err
		}
	}
	return m, nil
}

// applyMemFill writes array contents by label.
func applyMemFill(m *sim.Machine, f MemFill) error {
	addr, size, ok := m.LookupLabel(f.Label)
	if !ok {
		return fmt.Errorf("memory fill: no allocation labelled %q", f.Label)
	}
	es := f.ElemSize
	if es == 0 {
		es = 4
	}
	if es != 1 && es != 2 && es != 4 && es != 8 {
		return fmt.Errorf("memory fill: bad element size %d", es)
	}
	values := f.Values
	switch {
	case f.Repeat > 0:
		v := int64(0)
		if len(values) > 0 {
			v = values[0]
		}
		values = make([]int64, f.Repeat)
		for i := range values {
			values[i] = v
		}
	case f.Random > 0:
		// Deterministic xorshift so batch runs are reproducible.
		seed := uint64(f.Seed)
		if seed == 0 {
			seed = 0x9E3779B97F4A7C15
		}
		values = make([]int64, f.Random)
		for i := range values {
			seed ^= seed << 13
			seed ^= seed >> 7
			seed ^= seed << 17
			values[i] = int64(int32(seed))
		}
	}
	if len(values)*es > size {
		return fmt.Errorf("memory fill: %d bytes exceed allocation %q of %d bytes",
			len(values)*es, f.Label, size)
	}
	buf := make([]byte, len(values)*es)
	for i, v := range values {
		for b := 0; b < es; b++ {
			buf[i*es+b] = byte(uint64(v) >> (8 * b))
		}
	}
	return m.WriteMemory(addr, buf)
}

// maxBatchCycles bounds batch simulations.
const maxBatchCycles = 50_000_000

func (s *Server) handleSimulate(w http.ResponseWriter, r *http.Request) (any, int, error) {
	var req SimulateRequest
	if err := s.decode(r, &req); err != nil {
		return nil, http.StatusBadRequest, err
	}
	m, err := s.buildMachine(&req)
	if err != nil {
		return nil, http.StatusUnprocessableEntity, err
	}
	steps := req.Steps
	if steps == 0 || steps > maxBatchCycles {
		steps = maxBatchCycles
	}
	sstart := time.Now()
	m.Run(steps)
	s.simNs.Add(uint64(time.Since(sstart)))
	resp := &SimulateResponse{
		Halted:     m.Halted(),
		HaltReason: m.HaltReason(),
		Cycles:     m.Cycle(),
		Stats:      m.Report(),
	}
	if req.IncludeState {
		resp.State = m.State(req.IncludeLog)
	} else if req.IncludeLog {
		resp.Log = m.Log()
	}
	return resp, 0, nil
}

// CompileRequest compiles C to assembly.
type CompileRequest struct {
	Code     string `json:"code"`
	Optimize int    `json:"optimize"`
	Filter   bool   `json:"filter,omitempty"`
}

// CompileResponse mirrors the paper's compiler round trip: assembly plus a
// log of potential compiler errors (§III-C).
type CompileResponse struct {
	Assembly string `json:"assembly,omitempty"`
	LineMap  []int  `json:"lineMap,omitempty"`
	Errors   string `json:"errors,omitempty"`
}

func (s *Server) handleCompile(w http.ResponseWriter, r *http.Request) (any, int, error) {
	var req CompileRequest
	if err := s.decode(r, &req); err != nil {
		return nil, http.StatusBadRequest, err
	}
	res, err := sim.CompileC(req.Code, req.Optimize)
	if err != nil {
		// Compiler diagnostics are data, not transport errors.
		return &CompileResponse{Errors: err.Error()}, http.StatusOK, nil
	}
	out := res.Assembly
	if req.Filter {
		out = sim.FilterAssembly(out)
	}
	return &CompileResponse{Assembly: out, LineMap: res.LineMap}, 0, nil
}

// ParseAsmRequest validates assembly (editor squiggles).
type ParseAsmRequest struct {
	Code string `json:"code"`
}

// ParseAsmResponse lists diagnostics.
type ParseAsmResponse struct {
	OK     bool   `json:"ok"`
	Errors string `json:"errors,omitempty"`
}

func (s *Server) handleParseAsm(w http.ResponseWriter, r *http.Request) (any, int, error) {
	var req ParseAsmRequest
	if err := s.decode(r, &req); err != nil {
		return nil, http.StatusBadRequest, err
	}
	if _, err := sim.NewFromAsm(sim.DefaultConfig(), req.Code, ""); err != nil {
		return &ParseAsmResponse{OK: false, Errors: err.Error()}, 0, nil
	}
	return &ParseAsmResponse{OK: true}, 0, nil
}

func (s *Server) handleCheckConfig(w http.ResponseWriter, r *http.Request) (any, int, error) {
	body, err := io.ReadAll(io.LimitReader(r.Body, s.opts.MaxBodyBytes))
	if err != nil {
		return nil, http.StatusBadRequest, err
	}
	if _, err := sim.ImportConfig(body); err != nil {
		return &ParseAsmResponse{OK: false, Errors: err.Error()}, 0, nil
	}
	return &ParseAsmResponse{OK: true}, 0, nil
}

func (s *Server) handleSchema(w http.ResponseWriter, r *http.Request) (any, int, error) {
	return sim.DefaultConfig(), 0, nil
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) (any, int, error) {
	return s.Metrics(), 0, nil
}

// handleInstructionDescriptions serves the instruction set in the paper's
// JSON configuration format (Listing 1) — the document users extend to add
// custom instructions.
func (s *Server) handleInstructionDescriptions(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	data, err := isa.RV32IMF().MarshalJSON()
	s.jsonNs.Add(uint64(time.Since(start)))
	if err != nil {
		http.Error(w, `{"error":"encoding instruction set failed"}`, http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(data)
	s.reqCount.Add(1)
	s.totalNs.Add(uint64(time.Since(start)))
}
