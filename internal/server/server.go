// Package server implements the simulation server: a versioned HTTP JSON
// API (/api/v1) that carries all simulator logic server-side, exactly like
// the paper's client–server split (§III). The web client and the CLI both
// speak this protocol. Responses are gzip-compressed when the client
// accepts it (gzip raised the paper's measured throughput by 40%, §IV-A).
//
// The wire contract — request/response documents, the error envelope with
// stable codes, and the Codec negotiation — lives in riscvsim/internal/api;
// this package binds it to HTTP. The pre-v1 flat paths (/simulate,
// /session/step, ...) remain mounted as deprecated aliases of their v1
// successors.
//
// The server instruments its own request handling: it records the share of
// time spent encoding/decoding JSON versus total handling time, which the
// paper profiles at "about 60% of the request handling time" (§IV-A),
// broken down per codec implementation; see /api/v1/metrics and the E2
// bench.
package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"
	"strings"
	"sync/atomic"
	"time"

	"riscvsim/internal/api"
	"riscvsim/internal/isa"
	"riscvsim/internal/store"
	"riscvsim/sim"
)

// Options configures the server.
type Options struct {
	// MaxSessions bounds the interactive session store; the least
	// recently used session is evicted when a new one would exceed it.
	MaxSessions int
	// SessionTTL expires sessions idle longer than this (0 = default;
	// negative = never expire).
	SessionTTL time.Duration
	// MaxBodyBytes bounds request bodies.
	MaxBodyBytes int64
	// DisableGzip turns off response compression (for the E3 bench).
	DisableGzip bool
	// SpillDir, when non-empty, enables transparent session spill: a
	// session evicted by LRU pressure or the idle TTL is checkpointed
	// into this directory and rehydrated on its next touch (including
	// after a server restart). Empty disables spilling; evictions then
	// lose sessions (counted in the sessions_lost metric). Ignored when
	// Store is set.
	SpillDir string
	// Store is the checkpoint-store backend for session spill and
	// rehydration (internal/store). It generalizes SpillDir — a
	// directory is just the Dir backend — and is how the distributed
	// tier shares one store across replicas. Takes precedence over
	// SpillDir when both are set.
	Store store.Store
	// SpillTTL garbage-collects spilled checkpoints older than this so
	// abandoned sessions cannot grow the store without bound (0 =
	// default 24h; negative = keep forever).
	SpillTTL time.Duration
	// WriteThrough persists every explicit session checkpoint
	// (POST /api/v1/session/checkpoint) into the checkpoint store, making
	// the store the authority for the session's state: any replica
	// sharing it can rehydrate the session, which is the distributed
	// tier's failover contract (docs/deployment.md). Requires a store.
	WriteThrough bool
	// AllowAssignedIDs accepts a caller-chosen session ID (the
	// api.SessionIDHeader request header) on session create/restore.
	// The consistent-hash router assigns IDs so a session's owner
	// replica is computable before the session exists; direct
	// deployments leave this off so IDs stay server-generated.
	AllowAssignedIDs bool
	// MaxInFlight caps concurrently executing simulation-bearing
	// requests (simulate, batch, suite, session create/step/goto/
	// checkpoint/restore, streams). Beyond it requests wait in a bounded
	// queue and are then shed with a typed 429 over_capacity response
	// carrying Retry-After, so overload degrades to fast rejections
	// instead of collapse (docs/robustness.md). 0 disables admission
	// control (the historical behavior).
	MaxInFlight int
	// MaxQueue bounds how many requests may wait for an in-flight slot
	// (only meaningful with MaxInFlight > 0; default 2x MaxInFlight).
	MaxQueue int
	// QueueTimeout bounds how long a queued request waits before being
	// shed (default 1s).
	QueueTimeout time.Duration
	// RequestTimeout is the per-request simulation deadline: a request
	// whose simulation work outruns it gets a typed deadline_exceeded
	// response (sessions keep whatever state the work reached). 0
	// disables the deadline.
	RequestTimeout time.Duration
	// Debug enables debug-level logging (session eviction/spill events).
	Debug bool
}

// DefaultOptions returns production defaults.
func DefaultOptions() Options {
	return Options{MaxSessions: 256, MaxBodyBytes: 4 << 20, SessionTTL: 15 * time.Minute}
}

// codecCounter tracks one codec's encode/decode time.
type codecCounter struct {
	enc atomic.Uint64
	dec atomic.Uint64
}

// Server is the simulation server.
type Server struct {
	opts Options
	mux  *http.ServeMux

	store *sessionStore
	adm   *admission

	// instrumentation counters (atomics: handlers run concurrently)
	reqCount     atomic.Uint64
	totalNs      atomic.Uint64
	jsonNs       atomic.Uint64
	simNs        atomic.Uint64
	batchReqs    atomic.Uint64
	batchSims    atomic.Uint64
	suiteReqs    atomic.Uint64
	suiteRuns    atomic.Uint64
	streamEvents atomic.Uint64
	deadlineHits atomic.Uint64
	codecNs      map[string]*codecCounter // fixed key set; values are atomic
}

// New builds a server.
func New(opts Options) *Server {
	if opts.MaxSessions <= 0 {
		opts.MaxSessions = 256
	}
	if opts.MaxBodyBytes <= 0 {
		opts.MaxBodyBytes = 4 << 20
	}
	if opts.SessionTTL == 0 {
		opts.SessionTTL = 15 * time.Minute
	}
	ttl := opts.SessionTTL
	if ttl < 0 {
		ttl = 0 // sentinel: never expire
	}
	if opts.SpillTTL == 0 {
		opts.SpillTTL = 24 * time.Hour
	}
	spillTTL := opts.SpillTTL
	if spillTTL < 0 {
		spillTTL = 0 // sentinel: never GC
	}
	var debugf func(string, ...any)
	if opts.Debug {
		debugf = func(format string, args ...any) {
			log.Printf("[debug] "+format, args...)
		}
	}
	backend := opts.Store
	if backend == nil && opts.SpillDir != "" {
		d, err := store.NewDir(opts.SpillDir)
		if err != nil {
			// A spill directory that cannot be created degrades to the
			// no-spill behavior the option always had on I/O failure.
			log.Printf("server: spill directory unusable, spilling disabled: %v", err)
		} else {
			backend = d
		}
	}
	maxQueue := opts.MaxQueue
	if maxQueue == 0 {
		maxQueue = 2 * opts.MaxInFlight
	}
	s := &Server{
		opts:    opts,
		mux:     http.NewServeMux(),
		store:   newSessionStore(opts.MaxSessions, ttl, backend, spillTTL, opts.WriteThrough, debugf),
		adm:     newAdmission(opts.MaxInFlight, maxQueue, opts.QueueTimeout),
		codecNs: make(map[string]*codecCounter),
	}
	for _, name := range api.CodecNames() {
		s.codecNs[name] = &codecCounter{}
	}
	s.routes()
	return s
}

// routes mounts the versioned API and the deprecated legacy aliases.
func (s *Server) routes() {
	// The v1 surface. Method-scoped patterns: mutations are POST,
	// reads are GET. v1Only marks endpoints born after the versioning
	// (no pre-v1 path existed).
	// Simulation-bearing endpoints pass through the admission valve
	// (s.admitted): they hold an in-flight slot for their whole handler
	// and get the per-request deadline. Cheap metadata endpoints
	// (schema, metrics, health, parse/check, render, log paging) bypass
	// it so an overloaded node stays observable and debuggable.
	routes := []struct {
		method, path string
		handler      http.HandlerFunc
		v1Only       bool
	}{
		{http.MethodPost, "/simulate", s.wrap(s.admitted(s.handleSimulate)), false},
		{http.MethodPost, "/batch", s.wrap(s.admitted(s.handleBatch)), true},
		{http.MethodPost, "/suite", s.wrap(s.admitted(s.handleSuite)), true},
		{http.MethodPost, "/compile", s.wrap(s.handleCompile), false},
		{http.MethodPost, "/parseAsm", s.wrap(s.handleParseAsm), false},
		{http.MethodPost, "/checkConfig", s.wrap(s.handleCheckConfig), false},
		{http.MethodGet, "/schema", s.wrap(s.handleSchema), false},
		{http.MethodGet, "/instructionDescriptions", s.handleInstructionDescriptions, false},
		{http.MethodPost, "/session/new", s.wrap(s.admitted(s.handleSessionNew)), false},
		{http.MethodPost, "/session/step", s.wrap(s.admitted(s.handleSessionStep)), false},
		{http.MethodPost, "/session/goto", s.wrap(s.admitted(s.handleSessionGoto)), false},
		{http.MethodPost, "/session/close", s.wrap(s.handleSessionClose), false},
		{http.MethodGet, "/session/render", s.wrap(s.handleSessionRender), false},
		{http.MethodPost, "/session/stream", s.admitStream(s.handleSessionStream), true},
		{http.MethodPost, "/session/trace", s.admitStream(s.handleSessionTrace), true},
		{http.MethodGet, "/session/{id}/log", s.wrap(s.handleSessionLog), true},
		{http.MethodPost, "/session/checkpoint", s.wrap(s.admitted(s.handleSessionCheckpoint)), true},
		{http.MethodPost, "/session/restore", s.wrap(s.admitted(s.handleSessionRestore)), true},
		{http.MethodGet, "/metrics", s.wrap(s.handleMetrics), false},
		{http.MethodGet, "/health", s.handleHealth, false},
	}
	for _, r := range routes {
		s.mux.HandleFunc(r.method+" "+api.V1Prefix+r.path, r.handler)
		if r.v1Only {
			continue
		}
		// Legacy alias: same handler on the flat pre-v1 path,
		// method-unrestricted as it always was, marked deprecated.
		s.mux.HandleFunc(r.path, deprecated(api.V1Prefix+r.path, r.handler))
	}
}

// deprecated marks a legacy alias response with its v1 successor.
func deprecated(successor string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Deprecation", "true")
		w.Header().Set("Link", fmt.Sprintf("<%s>; rel=\"successor-version\"", successor))
		h(w, r)
	}
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	w.WriteHeader(http.StatusOK)
	fmt.Fprintln(w, "ok")
}

// Handler returns the HTTP handler (with gzip support).
func (s *Server) Handler() http.Handler {
	if s.opts.DisableGzip {
		return s.mux
	}
	return gzipMiddleware(s.mux)
}

// SpillSessions checkpoints every live interactive session into the
// checkpoint store and drops it from memory (the graceful shutdown path:
// a new server process with the same store picks the sessions back up
// transparently). It returns how many sessions were processed.
func (s *Server) SpillSessions() int { return s.store.SpillAll() }

// Shutdown is the graceful-termination sequence: first drain the HTTP
// server (no new connections, in-flight requests run to completion
// within ctx's deadline), then spill every live session. The ordering
// is the point — spilling before the drain raced in-flight handlers: a
// request could mutate a machine after its spill was captured, or get a
// spurious unknown_session as its session retired mid-operation. It
// returns the number of sessions spilled and the drain error, if any
// (context deadline exceeded when in-flight work outran the budget; the
// spill still runs and captures whatever state the handlers reached).
func (s *Server) Shutdown(ctx context.Context, hs *http.Server) (int, error) {
	err := hs.Shutdown(ctx)
	return s.store.SpillAll(), err
}

// Metrics returns the accumulated instrumentation.
func (s *Server) Metrics() api.Metrics {
	m := api.Metrics{
		Requests:         s.reqCount.Load(),
		TotalNanos:       s.totalNs.Load(),
		JSONNanos:        s.jsonNs.Load(),
		SimNanos:         s.simNs.Load(),
		ActiveSessions:   s.store.Len(),
		BatchRequests:    s.batchReqs.Load(),
		BatchSimulations: s.batchSims.Load(),
		SuiteRequests:    s.suiteReqs.Load(),
		SuiteWorkloads:   s.suiteRuns.Load(),
		StreamEvents:     s.streamEvents.Load(),
		InFlight:         s.adm.inFlight.Load(),
		Shed:             s.adm.shed.Load(),
		DeadlineExceeded: s.deadlineHits.Load(),
		Codecs:           make(map[string]api.CodecMetrics, len(s.codecNs)),
	}
	m.SessionsSpilled, m.SessionsRehydrated, m.SessionsLost = s.store.Counters()
	if m.TotalNanos > 0 {
		m.JSONShare = float64(m.JSONNanos) / float64(m.TotalNanos)
	}
	for name, c := range s.codecNs {
		cm := api.CodecMetrics{EncodeNanos: c.enc.Load(), DecodeNanos: c.dec.Load()}
		if m.TotalNanos > 0 {
			cm.Share = float64(cm.EncodeNanos+cm.DecodeNanos) / float64(m.TotalNanos)
		}
		m.Codecs[name] = cm
	}
	return m
}

// ResetMetrics clears the counters (benchmark harness).
func (s *Server) ResetMetrics() {
	s.reqCount.Store(0)
	s.totalNs.Store(0)
	s.jsonNs.Store(0)
	s.simNs.Store(0)
	s.batchReqs.Store(0)
	s.batchSims.Store(0)
	s.suiteReqs.Store(0)
	s.suiteRuns.Store(0)
	s.streamEvents.Store(0)
	for _, c := range s.codecNs {
		c.enc.Store(0)
		c.dec.Store(0)
	}
}

// addCodecTime books serialization time both into the aggregate jsonNs
// (the paper's §IV-A metric) and the per-codec breakdown.
func (s *Server) addCodecTime(name string, d time.Duration, encode bool) {
	ns := uint64(d)
	s.jsonNs.Add(ns)
	if c, ok := s.codecNs[name]; ok {
		if encode {
			c.enc.Add(ns)
		} else {
			c.dec.Add(ns)
		}
	}
}

// statusForCode maps stable v1 error codes onto HTTP statuses.
func statusForCode(code string) int {
	switch code {
	case api.CodeBadJSON, api.CodeBadRequest, api.CodeBadTrace, api.CodeBadFilter:
		return http.StatusBadRequest
	case api.CodeBodyTooLarge, api.CodeBatchTooLarge:
		return http.StatusRequestEntityTooLarge
	case api.CodeUnknownPreset, api.CodeBadConfig, api.CodeBuildFailed,
		api.CodeMemFill, api.CodeUnprocessable, api.CodeRewindBarrier,
		api.CodeCheckpointVersion, api.CodeCheckpointConfig:
		return http.StatusUnprocessableEntity
	case api.CodeBadCheckpoint, api.CodeCheckpointTruncated:
		return http.StatusBadRequest
	case api.CodeUnknownSession:
		return http.StatusNotFound
	case api.CodeSessionExists:
		return http.StatusConflict
	case api.CodeSessionMoved:
		return http.StatusGone
	case api.CodeNodeUnavailable:
		return http.StatusServiceUnavailable
	case api.CodeOverCapacity:
		return http.StatusTooManyRequests
	case api.CodeDeadlineExceeded:
		return http.StatusGatewayTimeout
	default:
		return http.StatusInternalServerError
	}
}

// handlerFunc handles a decoded request and returns a response value to
// encode, or an error with an optional HTTP status override (0 derives
// the status from the error's code).
type handlerFunc func(w http.ResponseWriter, r *http.Request) (any, int, error)

// reqCodecKey carries the negotiated request codec through the request
// context, so the Accept/Content-Type headers are parsed once per
// request (in wrap) rather than again in decode.
type reqCodecKey struct{}

// wrap adds timing instrumentation, codec negotiation and the uniform
// envelope.
func (s *Server) wrap(h handlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		reqCodec, respCodec := api.Negotiate(r.Header.Get("Content-Type"), r.Header.Get("Accept"))
		r = r.WithContext(context.WithValue(r.Context(), reqCodecKey{}, reqCodec))
		resp, status, err := h(w, r)
		if err != nil {
			ae := api.WrapError(api.CodeBadRequest, err)
			resp = &api.ErrorEnvelope{Err: *ae}
			if ae.Code == api.CodeOverCapacity || ae.Code == api.CodeDeadlineExceeded {
				// Both are transient: tell retrying clients when.
				setRetryAfter(w)
			}
			if status == 0 {
				status = statusForCode(ae.Code)
			}
		} else if status == 0 {
			status = http.StatusOK
		}
		buf := api.GetBuffer()
		jstart := time.Now()
		merr := respCodec.Encode(buf, resp)
		s.addCodecTime(respCodec.Name(), time.Since(jstart), true)
		if merr != nil {
			status = http.StatusInternalServerError
			buf.Reset()
			buf.WriteString(`{"error":{"code":"internal","message":"response encoding failed"}}`)
		}
		w.Header().Set("Content-Type", api.MediaTypeJSON)
		w.Header().Set("X-Codec", respCodec.Name())
		w.WriteHeader(status)
		w.Write(buf.Bytes())
		api.PutBuffer(buf)
		s.reqCount.Add(1)
		s.totalNs.Add(uint64(time.Since(start)))
	}
}

// admitted gates a handler behind the admission valve: it holds an
// in-flight slot for the handler's whole run and applies the per-request
// simulation deadline (Options.RequestTimeout) through the request
// context. Shed requests return the typed over_capacity error before any
// decoding or simulation work happens.
func (s *Server) admitted(h handlerFunc) handlerFunc {
	return func(w http.ResponseWriter, r *http.Request) (any, int, error) {
		release, aerr := s.adm.acquire(r.Context())
		if aerr != nil {
			return nil, 0, aerr
		}
		defer release()
		if s.opts.RequestTimeout > 0 {
			ctx, cancel := context.WithTimeout(r.Context(), s.opts.RequestTimeout)
			defer cancel()
			r = r.WithContext(ctx)
		}
		return h(w, r)
	}
}

// admitStream is admitted for the raw streaming handlers that live
// outside wrap. A stream holds its slot for its whole life — it is
// simulation work — but gets no deadline: streams pace themselves and
// end on client disconnect.
func (s *Server) admitStream(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		release, aerr := s.adm.acquire(r.Context())
		if aerr != nil {
			setRetryAfter(w)
			s.writeError(w, aerr)
			return
		}
		defer release()
		h(w, r)
	}
}

// deadlineChunk is the cycle granularity at which a long simulation
// checks its request deadline: small enough that a deadline lands within
// ~a millisecond of wall time, large enough that the check is free.
const deadlineChunk = 200_000

// runMachine advances m by up to n cycles, honoring the request
// context's deadline, and books the time into simNs. Without a deadline
// it is one plain run; with one, the run proceeds in deadlineChunk
// slices so a runaway program cannot hold its admission slot past the
// deadline. The machine keeps whatever state it reached either way —
// for a session that state is real and the typed deadline_exceeded
// error tells the client so.
func (s *Server) runMachine(ctx context.Context, m *sim.Machine, n uint64) (uint64, *api.Error) {
	sstart := time.Now()
	defer func() { s.simNs.Add(uint64(time.Since(sstart))) }()
	if ctx.Done() == nil {
		return m.Run(n), nil
	}
	var total uint64
	for total < n {
		if ctx.Err() != nil {
			s.deadlineHits.Add(1)
			return total, api.Errorf(api.CodeDeadlineExceeded,
				"request deadline exceeded after %d of %d cycles (state reached is kept)", total, n)
		}
		chunk := n - total
		if chunk > deadlineChunk {
			chunk = deadlineChunk
		}
		ran := m.Run(chunk)
		total += ran
		if m.Halted() || m.Paused() || ran < chunk {
			break
		}
	}
	return total, nil
}

// writeError emits the error envelope outside wrap (streaming paths).
func (s *Server) writeError(w http.ResponseWriter, ae *api.Error) {
	w.Header().Set("Content-Type", api.MediaTypeJSON)
	w.WriteHeader(statusForCode(ae.Code))
	json.NewEncoder(w).Encode(&api.ErrorEnvelope{Err: *ae})
}

// decode reads a request body through the negotiated codec, enforcing
// MaxBodyBytes, with instrumentation. The codec comes from the request
// context when wrap (or the stream handler) already negotiated it.
func (s *Server) decode(w http.ResponseWriter, r *http.Request, into any) *api.Error {
	reqCodec, ok := r.Context().Value(reqCodecKey{}).(api.Codec)
	if !ok {
		reqCodec, _ = api.Negotiate(r.Header.Get("Content-Type"), r.Header.Get("Accept"))
	}
	body := http.MaxBytesReader(w, r.Body, s.opts.MaxBodyBytes)
	jstart := time.Now()
	err := reqCodec.Decode(body, into)
	s.addCodecTime(reqCodec.Name(), time.Since(jstart), false)
	if err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			return api.Errorf(api.CodeBodyTooLarge, "request body exceeds %d bytes", s.opts.MaxBodyBytes)
		}
		return api.Errorf(api.CodeBadJSON, "bad JSON request: %v", err)
	}
	return nil
}

// buildMachine binds BuildMachine as the handlers' build step.
func (s *Server) buildMachine(req *api.SimulateRequest) (*sim.Machine, *api.Error) {
	return BuildMachine(req)
}

// BuildMachine constructs a machine from request fields, attaching the
// stable error code of whichever stage failed. A request carrying a
// checkpoint restores from it (forking the snapshot) instead of building
// from source; memory fills still apply afterwards. Exported so the
// CLI's in-process paths (checkpoint save, memory dumps) build machines
// with exactly the server's semantics.
func BuildMachine(req *api.SimulateRequest) (*sim.Machine, *api.Error) {
	if len(req.Checkpoint) > 0 {
		m, err := sim.Restore(bytes.NewReader(req.Checkpoint))
		if err != nil {
			return nil, api.CheckpointError(err)
		}
		// The request's verbosity wins over whatever flag the snapshot
		// serialized, same as the build-from-source path below.
		m.SetVerboseLog(req.Verbose)
		for _, f := range req.MemFills {
			if err := ApplyMemFill(m, f); err != nil {
				return nil, api.WrapError(api.CodeMemFill, err)
			}
		}
		return m, nil
	}
	cfg, aerr := resolveConfig(req.Preset, req.Config)
	if aerr != nil {
		return nil, aerr
	}
	var m *sim.Machine
	var err error
	if strings.EqualFold(req.Language, "c") {
		m, err = sim.NewFromC(cfg, req.Code, req.Optimize)
	} else {
		m, err = sim.NewFromAsm(cfg, req.Code, req.Entry)
	}
	if err != nil {
		return nil, api.WrapError(api.CodeBuildFailed, err)
	}
	m.SetVerboseLog(req.Verbose)
	for _, f := range req.MemFills {
		if err := ApplyMemFill(m, f); err != nil {
			return nil, api.WrapError(api.CodeMemFill, err)
		}
	}
	return m, nil
}

// ApplyMemFill writes array contents by label (the Memory Settings
// windows fills). Exported so the CLIs in-process checkpoint path
// applies the same semantics as the server.
func ApplyMemFill(m *sim.Machine, f api.MemFill) error {
	addr, size, ok := m.LookupLabel(f.Label)
	if !ok {
		return fmt.Errorf("memory fill: no allocation labelled %q", f.Label)
	}
	es := f.ElemSize
	if es == 0 {
		es = 4
	}
	if es != 1 && es != 2 && es != 4 && es != 8 {
		return fmt.Errorf("memory fill: bad element size %d", es)
	}
	values := f.Values
	switch {
	case f.Repeat > 0:
		v := int64(0)
		if len(values) > 0 {
			v = values[0]
		}
		values = make([]int64, f.Repeat)
		for i := range values {
			values[i] = v
		}
	case f.Random > 0:
		// Deterministic xorshift so batch runs are reproducible.
		seed := uint64(f.Seed)
		if seed == 0 {
			seed = 0x9E3779B97F4A7C15
		}
		values = make([]int64, f.Random)
		for i := range values {
			seed ^= seed << 13
			seed ^= seed >> 7
			seed ^= seed << 17
			values[i] = int64(int32(seed))
		}
	}
	if len(values)*es > size {
		return fmt.Errorf("memory fill: %d bytes exceed allocation %q of %d bytes",
			len(values)*es, f.Label, size)
	}
	buf := make([]byte, len(values)*es)
	for i, v := range values {
		for b := 0; b < es; b++ {
			buf[i*es+b] = byte(uint64(v) >> (8 * b))
		}
	}
	return m.WriteMemory(addr, buf)
}

// maxBatchCycles bounds batch simulations.
const maxBatchCycles = 50_000_000

// TraceRing builds the bounded collector a request's trace options
// describe. Exported so the CLI's in-process paths (checkpoint save,
// memory dumps) trace with exactly the server's semantics.
func TraceRing(opts *api.TraceOptions) (*sim.TraceRing, *api.Error) {
	f, err := sim.ParseTraceFilter(opts.Stages, opts.PCRange)
	if err != nil {
		return nil, api.WrapError(api.CodeBadTrace, err)
	}
	limit := opts.Limit
	if limit == 0 {
		limit = api.DefaultTraceLimit
	}
	if limit < 0 || limit > api.MaxTraceLimit {
		return nil, api.Errorf(api.CodeBadTrace, "trace limit %d out of range (1..%d)", limit, api.MaxTraceLimit)
	}
	return sim.NewTraceRing(limit, f), nil
}

// TraceResultOf packages a collector's contents for the v1 envelope.
// Exported alongside TraceRing so the CLI's in-process paths produce
// responses identical to the server's.
func TraceResultOf(ring *sim.TraceRing) *api.TraceResult {
	return &api.TraceResult{Events: ring.Events(), Total: ring.Total(), Dropped: ring.Dropped()}
}

// runSimulate executes one SimulateRequest start-to-finish: the shared
// core of /api/v1/simulate and each /api/v1/batch entry.
func (s *Server) runSimulate(ctx context.Context, req *api.SimulateRequest) (*api.SimulateResponse, *api.Error) {
	if req.Parallelism >= 2 {
		return s.runSimulateParallel(req)
	}
	m, aerr := s.buildMachine(req)
	if aerr != nil {
		return nil, aerr
	}
	var ring *sim.TraceRing
	if req.Trace != nil {
		if ring, aerr = TraceRing(req.Trace); aerr != nil {
			return nil, aerr
		}
		m.SetTracer(ring)
	}
	if req.FastForward {
		m.SetEngineMode(sim.EngineFastForward)
	}
	steps := req.Steps
	if steps == 0 || steps > maxBatchCycles {
		steps = maxBatchCycles
	}
	if _, aerr := s.runMachine(ctx, m, steps); aerr != nil {
		return nil, aerr
	}
	resp := &api.SimulateResponse{
		Halted:     m.Halted(),
		HaltReason: m.HaltReason(),
		Cycles:     m.Cycle(),
		Stats:      m.Report(),
	}
	if req.IncludeState {
		resp.State = m.State(req.IncludeLog)
	} else if req.IncludeLog {
		resp.Log = m.Log()
	}
	if ring != nil {
		resp.Trace = TraceResultOf(ring)
	}
	return resp, nil
}

// runSimulateParallel is the Parallelism >= 2 leg of runSimulate: a
// time-parallel detailed run (docs/parallel.md) with a stitched report.
// The final architectural state — and therefore State — is bit-exact
// versus serial; Stats carries the merged per-interval deltas.
func (s *Server) runSimulateParallel(req *api.SimulateRequest) (*api.SimulateResponse, *api.Error) {
	switch {
	case req.FastForward:
		return nil, api.Errorf(api.CodeBadRequest, "parallelism and fastForward are mutually exclusive")
	case req.Trace != nil:
		return nil, api.Errorf(api.CodeBadRequest, "parallelism does not support pipeline tracing")
	case len(req.Checkpoint) != 0:
		return nil, api.Errorf(api.CodeBadRequest, "parallelism requires a from-zero run, not a checkpoint restore")
	}
	m, aerr := s.buildMachine(req)
	if aerr != nil {
		return nil, aerr
	}
	k := req.Parallelism
	if k > api.MaxParallelism {
		k = api.MaxParallelism
	}
	steps := req.Steps
	if steps == 0 || steps > maxBatchCycles {
		steps = maxBatchCycles
	}
	sstart := time.Now()
	res, err := m.RunParallel(k, sim.ParallelOptions{
		WarmupInstructions: req.WarmupCycles,
		MaxCycles:          steps,
	})
	s.simNs.Add(uint64(time.Since(sstart)))
	if err != nil {
		// The program did not terminate within the budget, or the machine
		// was not runnable time-parallel — a property of this request, not
		// a server fault.
		return nil, api.WrapError(api.CodeUnprocessable, err)
	}
	resp := &api.SimulateResponse{
		Halted:     m.Halted(),
		HaltReason: m.HaltReason(),
		Cycles:     res.Report.Cycles,
		Stats:      res.Report,
		Parallel: &api.ParallelInfo{
			Workers:   res.Workers,
			Healed:    res.Healed,
			Intervals: res.Intervals,
		},
	}
	if req.IncludeState {
		resp.State = m.State(req.IncludeLog)
	} else if req.IncludeLog {
		resp.Log = m.Log()
	}
	return resp, nil
}

func (s *Server) handleSimulate(w http.ResponseWriter, r *http.Request) (any, int, error) {
	var req api.SimulateRequest
	if aerr := s.decode(w, r, &req); aerr != nil {
		return nil, 0, aerr
	}
	resp, aerr := s.runSimulate(r.Context(), &req)
	if aerr != nil {
		return nil, 0, aerr
	}
	return resp, 0, nil
}

func (s *Server) handleCompile(w http.ResponseWriter, r *http.Request) (any, int, error) {
	var req api.CompileRequest
	if aerr := s.decode(w, r, &req); aerr != nil {
		return nil, 0, aerr
	}
	res, err := sim.CompileC(req.Code, req.Optimize)
	if err != nil {
		// Compiler diagnostics are data, not transport errors.
		return &api.CompileResponse{Errors: err.Error()}, http.StatusOK, nil
	}
	out := res.Assembly
	if req.Filter {
		out = sim.FilterAssembly(out)
	}
	return &api.CompileResponse{Assembly: out, LineMap: res.LineMap}, 0, nil
}

func (s *Server) handleParseAsm(w http.ResponseWriter, r *http.Request) (any, int, error) {
	var req api.ParseAsmRequest
	if aerr := s.decode(w, r, &req); aerr != nil {
		return nil, 0, aerr
	}
	if _, err := sim.NewFromAsm(sim.DefaultConfig(), req.Code, ""); err != nil {
		return &api.ParseAsmResponse{OK: false, Errors: err.Error()}, 0, nil
	}
	return &api.ParseAsmResponse{OK: true}, 0, nil
}

// handleCheckConfig validates an architecture document. The body is the
// raw configuration JSON; it flows through the codec layer like every
// other request, so its parse time lands in the jsonNs metric and
// MaxBodyBytes applies.
func (s *Server) handleCheckConfig(w http.ResponseWriter, r *http.Request) (any, int, error) {
	var raw json.RawMessage
	if aerr := s.decode(w, r, &raw); aerr != nil {
		if aerr.Code == api.CodeBodyTooLarge {
			return nil, 0, aerr
		}
		// Config syntax problems are diagnostics, not transport errors.
		return &api.ParseAsmResponse{OK: false, Errors: aerr.Message}, 0, nil
	}
	if _, err := sim.ImportConfig(raw); err != nil {
		return &api.ParseAsmResponse{OK: false, Errors: err.Error()}, 0, nil
	}
	return &api.ParseAsmResponse{OK: true}, 0, nil
}

func (s *Server) handleSchema(w http.ResponseWriter, r *http.Request) (any, int, error) {
	return sim.DefaultConfig(), 0, nil
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) (any, int, error) {
	return s.Metrics(), 0, nil
}

// handleInstructionDescriptions serves the instruction set in the paper's
// JSON configuration format (Listing 1) — the document users extend to add
// custom instructions.
func (s *Server) handleInstructionDescriptions(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	data, err := isa.RV32IMF().MarshalJSON()
	s.addCodecTime(api.JSONCodec.Name(), time.Since(start), true)
	if err != nil {
		http.Error(w, `{"error":{"code":"internal","message":"encoding instruction set failed"}}`,
			http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", api.MediaTypeJSON)
	w.Write(data)
	s.reqCount.Add(1)
	s.totalNs.Add(uint64(time.Since(start)))
}
