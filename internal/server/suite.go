package server

import (
	"encoding/json"
	"net/http"

	"riscvsim/internal/api"
	"riscvsim/internal/workload"
	"riscvsim/sim"
)

// handleSuite runs the embedded workload corpus against one architecture
// and returns the typed per-workload metrics report. The corpus is fanned
// out across the same worker pool as /api/v1/batch; each workload is one
// SimulateRequest, so panics, cycle bounds and instrumentation behave
// exactly as they do for batch entries. Unlike a batch, a suite is
// all-or-nothing: a metrics report with holes is useless as a baseline,
// so the first failing workload fails the request.
func (s *Server) handleSuite(w http.ResponseWriter, r *http.Request) (any, int, error) {
	var req api.SuiteRequest
	if aerr := s.decode(w, r, &req); aerr != nil {
		return nil, 0, aerr
	}
	cfg, aerr := resolveConfig(req.Preset, req.Config)
	if aerr != nil {
		return nil, 0, aerr
	}
	selected, err := workload.Match(req.Filter)
	if err != nil {
		return nil, 0, api.WrapError(api.CodeBadFilter, err)
	}
	fp, err := cfg.Fingerprint()
	if err != nil {
		return nil, 0, api.WrapError(api.CodeInternal, err)
	}
	cfgJSON, err := cfg.Export()
	if err != nil {
		return nil, 0, api.WrapError(api.CodeInternal, err)
	}
	raw := json.RawMessage(cfgJSON)

	simReqs := make([]api.SimulateRequest, len(selected))
	for i, wl := range selected {
		simReqs[i] = api.SimulateRequest{
			Code:   wl.Source,
			Entry:  wl.Entry,
			Steps:  wl.MaxCycles,
			Config: &raw,
		}
	}
	results, workers, wall, err := s.fanOut(r.Context(), simReqs)
	if err != nil {
		return nil, 0, api.WrapError(api.CodeInternal, err)
	}

	rows := make([]workload.Metrics, len(selected))
	for i, res := range results {
		if res.Error != nil {
			// The corpus is server-embedded: a workload that fails to
			// build or run is a server defect, never the caller's fault,
			// so the item's code is folded into the message and the
			// request fails as internal (500), not 4xx.
			return nil, 0, api.Errorf(api.CodeInternal,
				"embedded workload %s failed: [%s] %s", selected[i].Name, res.Error.Code, res.Error.Message)
		}
		rows[i] = workload.FromReport(selected[i], res.Response.Stats)
	}
	s.suiteReqs.Add(1)
	s.suiteRuns.Add(uint64(len(selected)))
	return &api.SuiteResponse{
		Report: workload.Report{
			Architecture:      cfg.Name,
			ConfigFingerprint: fp,
			Workloads:         rows,
		},
		Workers:   workers,
		WallNanos: uint64(wall),
	}, 0, nil
}

// resolveConfig applies the Preset/Config precedence shared by simulate
// and suite requests: Config overrides Preset overrides the default.
func resolveConfig(preset string, raw *json.RawMessage) (*sim.Config, *api.Error) {
	cfg := sim.DefaultConfig()
	if preset != "" {
		p, ok := sim.Presets()[preset]
		if !ok {
			return nil, api.Errorf(api.CodeUnknownPreset, "unknown preset %q", preset)
		}
		cfg = p
	}
	if raw != nil {
		c, err := sim.ImportConfig(*raw)
		if err != nil {
			return nil, api.WrapError(api.CodeBadConfig, err)
		}
		cfg = c
	}
	return cfg, nil
}
