package server

import (
	"compress/gzip"
	"io"
	"net/http"
	"strings"
	"sync"
)

// gzipWriterPool recycles compressors across requests.
var gzipWriterPool = sync.Pool{
	New: func() any { return gzip.NewWriter(io.Discard) },
}

// gzipResponseWriter compresses the response body.
type gzipResponseWriter struct {
	http.ResponseWriter
	gz *gzip.Writer
}

// Write implements io.Writer over the compressor.
func (w *gzipResponseWriter) Write(b []byte) (int, error) {
	return w.gz.Write(b)
}

// Flush implements http.Flusher passthrough: it drains the compressor's
// buffered output and then flushes the underlying writer. Without this,
// the NDJSON streaming endpoint would buffer behind the compressor until
// the stream ended.
func (w *gzipResponseWriter) Flush() {
	w.gz.Flush()
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// gzipMiddleware compresses responses for clients that accept gzip and
// transparently decompresses gzip request bodies. The paper reports that
// enabling gzip increased local throughput by 40% (§IV-A).
func gzipMiddleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// Decompress request bodies when flagged.
		if strings.Contains(r.Header.Get("Content-Encoding"), "gzip") && r.Body != nil {
			gr, err := gzip.NewReader(r.Body)
			if err != nil {
				http.Error(w, `{"error":{"code":"bad_request","message":"bad gzip body"}}`, http.StatusBadRequest)
				return
			}
			defer gr.Close()
			r.Body = io.NopCloser(gr)
			r.Header.Del("Content-Encoding")
		}
		// The response varies with the request's Accept-Encoding either
		// way — caches must key on it.
		w.Header().Add("Vary", "Accept-Encoding")
		if !strings.Contains(r.Header.Get("Accept-Encoding"), "gzip") {
			next.ServeHTTP(w, r)
			return
		}
		gz := gzipWriterPool.Get().(*gzip.Writer)
		gz.Reset(w)
		defer func() {
			gz.Close()
			gzipWriterPool.Put(gz)
		}()
		w.Header().Set("Content-Encoding", "gzip")
		next.ServeHTTP(&gzipResponseWriter{ResponseWriter: w, gz: gz}, r)
	})
}
