package router

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"riscvsim/internal/api"
	"riscvsim/internal/client"
	"riscvsim/internal/server"
	"riscvsim/internal/store"
	"riscvsim/sim"
)

// loopAsm never halts, so any step budget runs in full — failover tests
// need deterministic cycle counts.
const loopAsm = "loop: addi t0, t0, 1\nbeq x0, x0, loop\n"

type testReplica struct {
	name string
	ts   *httptest.Server
	hits atomic.Int64
}

type testCluster struct {
	t        *testing.T
	backend  *store.Mem
	replicas []*testReplica
	rt       *Router
	routerTS *httptest.Server
}

// newTestCluster spins n in-process simserver replicas over one shared
// in-memory checkpoint store behind a router — the compose topology,
// minus the containers.
func newTestCluster(t *testing.T, n int) *testCluster {
	t.Helper()
	c := &testCluster{t: t, backend: store.NewMem()}
	var reps []Replica
	for i := 0; i < n; i++ {
		srv := server.New(server.Options{
			MaxSessions:      16,
			Store:            c.backend,
			WriteThrough:     true,
			AllowAssignedIDs: true,
		})
		tr := &testReplica{name: fmt.Sprintf("sim%d", i+1)}
		inner := srv.Handler()
		tr.ts = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			tr.hits.Add(1)
			inner.ServeHTTP(w, r)
		}))
		t.Cleanup(tr.ts.Close)
		c.replicas = append(c.replicas, tr)
		reps = append(reps, Replica{Name: tr.name, URL: tr.ts.URL})
	}
	rt, err := New(Options{
		Replicas:       reps,
		HealthInterval: 50 * time.Millisecond,
		HealthTimeout:  300 * time.Millisecond,
		Retries:        3,
		RetryBackoff:   10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	c.rt = rt
	t.Cleanup(rt.Close)
	c.routerTS = httptest.NewServer(rt.Handler())
	t.Cleanup(c.routerTS.Close)
	return c
}

func (c *testCluster) client() *client.Client {
	return client.NewForURL(c.routerTS.URL, true)
}

func (c *testCluster) kill(name string) {
	c.t.Helper()
	for _, r := range c.replicas {
		if r.name == name {
			r.ts.Close()
			return
		}
	}
	c.t.Fatalf("no replica %q", name)
}

// ownerOf asks the router's admin surface which replica owns a session.
func (c *testCluster) ownerOf(id string) string {
	c.t.Helper()
	resp, err := http.Get(c.routerTS.URL + "/admin/owner?session=" + id)
	if err != nil {
		c.t.Fatal(err)
	}
	defer resp.Body.Close()
	var out OwnerResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		c.t.Fatal(err)
	}
	return out.Owner
}

// referenceHash runs the same program uninterrupted on one in-process
// machine and returns its state hash after total cycles — the bit-exact
// yardstick every failover path must match.
func referenceHash(t *testing.T, asm string, total uint64) uint64 {
	t.Helper()
	m, err := sim.NewFromAsm(sim.DefaultConfig(), asm, "")
	if err != nil {
		t.Fatal(err)
	}
	m.EnableSnapshots(0)
	m.StepN(total)
	return m.StateHash()
}

// remoteHash checkpoints a routed session and hashes the state it
// serializes.
func remoteHash(t *testing.T, cl *client.Client, id string) uint64 {
	t.Helper()
	ck, err := cl.Checkpoint(id)
	if err != nil {
		t.Fatal(err)
	}
	m, err := sim.Restore(bytes.NewReader(ck.Checkpoint))
	if err != nil {
		t.Fatal(err)
	}
	return m.StateHash()
}

func TestRendezvousStability(t *testing.T) {
	names := []string{"sim1", "sim2", "sim3"}
	ownerAmong := func(id string, replicas []string) string {
		best, bestScore := "", uint64(0)
		for _, n := range replicas {
			if s := rendezvousScore(id, n); best == "" || s > bestScore {
				best, bestScore = n, s
			}
		}
		return best
	}
	counts := map[string]int{}
	moved := 0
	for i := 0; i < 3000; i++ {
		id := fmt.Sprintf("s%08d", i)
		full := ownerAmong(id, names)
		counts[full]++
		// Removing sim2 must only remap sim2's sessions.
		reduced := ownerAmong(id, []string{"sim1", "sim3"})
		if full != "sim2" && reduced != full {
			t.Fatalf("session %s moved %s -> %s when sim2 left the ring", id, full, reduced)
		}
		if full == "sim2" {
			moved++
		}
	}
	for _, n := range names {
		if counts[n] < 3000/3/2 {
			t.Errorf("replica %s owns only %d/3000 sessions — distribution badly skewed: %v", n, counts[n], counts)
		}
	}
	if moved == 0 {
		t.Error("sim2 owned nothing; the distribution check is vacuous")
	}
}

func TestRouterSessionAffinity(t *testing.T) {
	c := newTestCluster(t, 3)
	cl := c.client()
	for i := 0; i < 5; i++ {
		sess, err := cl.NewSession(&api.SessionNewRequest{SimulateRequest: api.SimulateRequest{Code: loopAsm}})
		if err != nil {
			t.Fatal(err)
		}
		owner := c.ownerOf(sess.SessionID)
		for j := 0; j < 3; j++ {
			if _, err := cl.Step(sess.SessionID, 10); err != nil {
				t.Fatalf("step %d on %s: %v", j, sess.SessionID, err)
			}
			if got := c.ownerOf(sess.SessionID); got != owner {
				t.Fatalf("session %s owner flapped %s -> %s with a stable ring", sess.SessionID, owner, got)
			}
		}
	}
}

func TestRouterStatelessRoundRobin(t *testing.T) {
	c := newTestCluster(t, 3)
	cl := c.client()
	for i := 0; i < 9; i++ {
		if _, err := cl.Simulate(&api.SimulateRequest{Code: "li a0, 1\n", Steps: 10}); err != nil {
			t.Fatal(err)
		}
	}
	for _, r := range c.replicas {
		if r.hits.Load() == 0 {
			t.Errorf("replica %s served nothing — stateless requests are not spreading", r.name)
		}
	}
}

// TestRouterFailoverBitExact is the heart of the distributed tier: a
// session checkpointed through the router survives its owner dying, and
// the rehydrated continuation on the new owner is bit-identical to an
// uninterrupted single-node run.
func TestRouterFailoverBitExact(t *testing.T) {
	const k1, k2 = 400, 300
	c := newTestCluster(t, 3)
	cl := c.client()
	sess, err := cl.NewSession(&api.SessionNewRequest{SimulateRequest: api.SimulateRequest{Code: loopAsm}})
	if err != nil {
		t.Fatal(err)
	}
	id := sess.SessionID
	if _, err := cl.Step(id, k1); err != nil {
		t.Fatal(err)
	}
	// The explicit checkpoint write-through makes the shared store the
	// session's authority — the durability boundary for the kill below.
	if _, err := cl.Checkpoint(id); err != nil {
		t.Fatal(err)
	}
	oldOwner := c.ownerOf(id)
	c.kill(oldOwner)

	st, err := cl.Step(id, k2)
	if err != nil {
		t.Fatalf("step after killing owner %s: %v", oldOwner, err)
	}
	if st.State.Cycle != k1+k2 {
		t.Fatalf("post-failover cycle = %d, want %d", st.State.Cycle, k1+k2)
	}
	if newOwner := c.ownerOf(id); newOwner == oldOwner {
		t.Fatalf("owner still %s after its death", oldOwner)
	}
	if got, want := remoteHash(t, cl, id), referenceHash(t, loopAsm, k1+k2); got != want {
		t.Errorf("failover state hash %#x, want uninterrupted reference %#x", got, want)
	}
}

// TestRouterSessionMoved pins the lossy-failover contract: a session
// that never checkpointed has nothing in the store, so after its owner
// dies the router reports session_moved (410) — not a bare
// unknown_session — telling the client the state is gone.
func TestRouterSessionMoved(t *testing.T) {
	c := newTestCluster(t, 3)
	cl := c.client()
	sess, err := cl.NewSession(&api.SessionNewRequest{SimulateRequest: api.SimulateRequest{Code: loopAsm}})
	if err != nil {
		t.Fatal(err)
	}
	id := sess.SessionID
	if _, err := cl.Step(id, 100); err != nil {
		t.Fatal(err)
	}
	c.kill(c.ownerOf(id))
	_, err = cl.Step(id, 100)
	if err == nil {
		t.Fatal("step succeeded though the only copy of the session died uncheckpointed")
	}
	if code := client.ErrorCode(err); code != api.CodeSessionMoved {
		t.Fatalf("error code = %q (%v), want %q", code, err, api.CodeSessionMoved)
	}
}

func TestRouterNodeUnavailable(t *testing.T) {
	c := newTestCluster(t, 2)
	cl := c.client()
	sess, err := cl.NewSession(&api.SessionNewRequest{SimulateRequest: api.SimulateRequest{Code: loopAsm}})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range c.replicas {
		r.ts.Close()
	}
	_, err = cl.Step(sess.SessionID, 10)
	if code := client.ErrorCode(err); code != api.CodeNodeUnavailable {
		t.Fatalf("error code = %q (%v), want %q", code, err, api.CodeNodeUnavailable)
	}
	_, err = cl.NewSession(&api.SessionNewRequest{SimulateRequest: api.SimulateRequest{Code: loopAsm}})
	if code := client.ErrorCode(err); code != api.CodeNodeUnavailable {
		t.Fatalf("create error code = %q (%v), want %q", code, err, api.CodeNodeUnavailable)
	}
}

// TestRouterMigrationOnRecovery pins the checkpoint-handoff sweep: when
// a replica joins (or rejoins) the ring, live sessions it now scores
// highest on move to it without losing un-checkpointed state.
func TestRouterMigrationOnRecovery(t *testing.T) {
	backend := store.NewMem()
	newReplicaServer := func() http.Handler {
		return server.New(server.Options{
			MaxSessions: 16, Store: backend, WriteThrough: true, AllowAssignedIDs: true,
		}).Handler()
	}
	live := httptest.NewServer(newReplicaServer())
	defer live.Close()
	// sim2 holds a reserved address that nothing serves yet: its health
	// probes fail until the server starts there later.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	lateURL := "http://" + ln.Addr().String()
	ln.Close()

	rt, err := New(Options{
		Replicas: []Replica{
			{Name: "sim1", URL: live.URL},
			{Name: "sim2", URL: lateURL},
		},
		HealthInterval: 25 * time.Millisecond,
		HealthTimeout:  200 * time.Millisecond,
		RetryBackoff:   10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	routerTS := httptest.NewServer(rt.Handler())
	defer routerTS.Close()
	cl := client.NewForURL(routerTS.URL, true)

	// Collect sessions until one rendezvous-prefers sim2 (it lands on
	// sim1 for now — sim2 is down). ~50% per draw, so 32 tries is
	// overwhelmingly enough.
	var id string
	for i := 0; i < 32; i++ {
		sess, err := cl.NewSession(&api.SessionNewRequest{SimulateRequest: api.SimulateRequest{Code: loopAsm}})
		if err != nil {
			t.Fatal(err)
		}
		if rendezvousScore(sess.SessionID, "sim2") > rendezvousScore(sess.SessionID, "sim1") {
			id = sess.SessionID
			break
		}
	}
	if id == "" {
		t.Fatal("no drawn session prefers sim2 (astronomically unlikely)")
	}
	if _, err := cl.Step(id, 250); err != nil {
		t.Fatal(err)
	}

	// sim2 comes up on the reserved address; the next health probe
	// triggers the migration sweep.
	ln2, err := net.Listen("tcp", ln.Addr().String())
	if err != nil {
		t.Skipf("reserved port reuse failed: %v", err)
	}
	late := &httptest.Server{Listener: ln2, Config: &http.Server{Handler: newReplicaServer()}}
	late.Start()
	defer late.Close()

	deadline := time.Now().Add(5 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatal("session never migrated to sim2")
		}
		resp, err := http.Get(routerTS.URL + "/admin/owner?session=" + id)
		if err != nil {
			t.Fatal(err)
		}
		var out OwnerResponse
		json.NewDecoder(resp.Body).Decode(&out)
		resp.Body.Close()
		if out.Owner == "sim2" {
			break
		}
		time.Sleep(25 * time.Millisecond)
	}
	// Poll until the handoff restore lands on sim2, then verify the
	// un-checkpointed state (cycle 250) survived the live migration
	// bit-exactly.
	var st *api.SessionStateResponse
	for {
		st, err = cl.Step(id, 50)
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("step after migration: %v", err)
		}
		time.Sleep(25 * time.Millisecond)
	}
	if st.State.Cycle != 300 {
		t.Fatalf("post-migration cycle = %d, want 300 (state lost in handoff)", st.State.Cycle)
	}
	if got, want := remoteHash(t, cl, id), referenceHash(t, loopAsm, 300); got != want {
		t.Errorf("post-migration hash %#x, want %#x", got, want)
	}
}

func TestParseReplicas(t *testing.T) {
	reps, err := ParseReplicas("sim1=http://sim1:8042, sim2=http://sim2:8042,http://10.0.0.7:8042")
	if err != nil {
		t.Fatal(err)
	}
	want := []Replica{
		{Name: "sim1", URL: "http://sim1:8042"},
		{Name: "sim2", URL: "http://sim2:8042"},
		{Name: "10.0.0.7:8042", URL: "http://10.0.0.7:8042"},
	}
	if len(reps) != len(want) {
		t.Fatalf("got %d replicas, want %d", len(reps), len(want))
	}
	for i := range want {
		if reps[i] != want[i] {
			t.Errorf("replica %d = %+v, want %+v", i, reps[i], want[i])
		}
	}
	for _, bad := range []string{"", "sim1=not a url", "a=http://x:1,a=http://y:2"} {
		if _, err := ParseReplicas(bad); err == nil {
			t.Errorf("ParseReplicas(%q) accepted", bad)
		}
	}
}
