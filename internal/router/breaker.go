package router

import (
	"math"
	"math/rand"
	"sync"
	"time"
)

// Circuit breaker and retry budget: the router's two overload guards
// (docs/robustness.md). The breaker stops the router from hammering a
// replica that keeps failing — probe failures and forward errors trip
// it, a cooldown later it half-opens and trial traffic decides whether
// it closes again. The retry budget bounds the *aggregate* retry volume:
// retries amplify load exactly when the tier is least able to absorb it,
// so instead of a fixed per-request retry count multiplying under
// overload, a token bucket earns capacity from successful requests and
// every retry spends from it. When the bucket is empty the router fails
// fast with the same typed node_unavailable the caller would have
// gotten after futile retries — just sooner and cheaper.

// breaker states.
const (
	breakerClosed   = iota // normal: traffic flows, failures counted
	breakerOpen            // tripped: replica excluded from routing
	breakerHalfOpen        // cooldown elapsed: trial traffic admitted
)

// breaker is one replica's circuit breaker.
type breaker struct {
	mu       sync.Mutex
	state    int
	failures int       // consecutive forward failures while closed
	openedAt time.Time // when the breaker last tripped

	threshold int           // consecutive failures that trip it
	cooldown  time.Duration // open -> half-open delay
	now       func() time.Time
}

func newBreaker(threshold int, cooldown time.Duration) *breaker {
	return &breaker{threshold: threshold, cooldown: cooldown, now: time.Now}
}

// allow reports whether traffic may flow to the replica. An open breaker
// whose cooldown has elapsed transitions to half-open and admits the
// request as a trial: its outcome (onSuccess / onFailure) decides
// whether the breaker closes or re-opens.
func (b *breaker) allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerOpen:
		if b.now().Sub(b.openedAt) < b.cooldown {
			return false
		}
		b.state = breakerHalfOpen
		return true
	default:
		return true
	}
}

// onSuccess books a successful forward: failures reset, and a half-open
// breaker closes (the trial passed).
func (b *breaker) onSuccess() {
	b.mu.Lock()
	b.failures = 0
	b.state = breakerClosed
	b.mu.Unlock()
}

// onFailure books a failed forward: a half-open trial failing re-opens
// immediately; a closed breaker trips after threshold consecutive
// failures.
func (b *breaker) onFailure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == breakerHalfOpen {
		b.state = breakerOpen
		b.openedAt = b.now()
		return
	}
	b.failures++
	if b.state == breakerClosed && b.failures >= b.threshold {
		b.state = breakerOpen
		b.openedAt = b.now()
	}
}

// halfOpen moves an open breaker straight to half-open: a health probe
// just confirmed the replica is back, so trial traffic may flow now
// instead of waiting out the cooldown (its outcome still decides
// whether the breaker closes).
func (b *breaker) halfOpen() {
	b.mu.Lock()
	if b.state == breakerOpen {
		b.state = breakerHalfOpen
	}
	b.mu.Unlock()
}

// trip forces the breaker open (probe failure / dial-failure markDown:
// the replica is known dead, no need to count up to the threshold).
func (b *breaker) trip() {
	b.mu.Lock()
	if b.state != breakerOpen {
		b.state = breakerOpen
		b.openedAt = b.now()
	}
	b.mu.Unlock()
}

// stateName reports the state for the metrics surface.
func (b *breaker) stateName() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

// retryBudget is the token bucket bounding aggregate retries. Successful
// forwards earn ratio tokens (capped at max); each retry spends one.
// The bucket starts full so cold-start and low-traffic retries work.
type retryBudget struct {
	mu     sync.Mutex
	tokens float64
	max    float64
	ratio  float64
}

func newRetryBudget(max, ratio float64) *retryBudget {
	return &retryBudget{tokens: max, max: max, ratio: ratio}
}

// credit books one successful forward.
func (b *retryBudget) credit() {
	b.mu.Lock()
	b.tokens = math.Min(b.max, b.tokens+b.ratio)
	b.mu.Unlock()
}

// spend takes one retry token, reporting false when the budget is
// exhausted (the caller fails fast instead of retrying).
func (b *retryBudget) spend() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

// maxBackoff caps the exponential retry backoff.
const maxBackoff = 2 * time.Second

// backoff is the jittered exponential delay before retry attempt
// (0-based): full jitter over [base/2, base*2^attempt], so synchronized
// clients spread out instead of retrying in lockstep.
func (rt *Router) backoff(attempt int) time.Duration {
	d := rt.opts.RetryBackoff
	for i := 0; i < attempt && d < maxBackoff; i++ {
		d *= 2
	}
	if d > maxBackoff {
		d = maxBackoff
	}
	half := d / 2
	return half + time.Duration(rand.Int63n(int64(half)+1))
}
