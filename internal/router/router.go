// Package router implements the distributed tier's front door: a
// consistent-hash HTTP router that spreads interactive sessions over a
// static set of simserver replicas (docs/deployment.md).
//
// Placement uses rendezvous (highest-random-weight) hashing: every
// replica scores every session ID and the healthy replica with the top
// score owns the session. Removing a replica only remaps the sessions
// it owned; adding one back only steals the sessions it scores highest
// on — no global reshuffle, no ring state to persist.
//
// The router assigns session IDs itself (api.SessionIDHeader) so a
// session's owner is computable from its ID before the session exists;
// replicas must run with -assigned-ids. Failover leans on the shared
// checkpoint store: when an owner dies, the next request routes to the
// new rendezvous owner, which rehydrates the session from the store's
// last write-through checkpoint. State past that checkpoint is gone —
// such sessions surface api.CodeSessionMoved so clients know to restore
// or restart.
package router

import (
	"crypto/rand"
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"io"
	"log"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"riscvsim/internal/api"
)

// Replica names one simserver backend.
type Replica struct {
	Name string // stable identity in the hash ring (NOT the URL: re-IPing a node must not remap its sessions)
	URL  string // base URL, e.g. http://sim1:8042
}

// ParseReplicas parses the -replicas flag: comma-separated name=url
// pairs. A bare URL gets its host as the name.
func ParseReplicas(s string) ([]Replica, error) {
	var out []Replica
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		rep := Replica{URL: part}
		if i := strings.Index(part, "="); i >= 0 && !strings.Contains(part[:i], "/") {
			rep.Name, rep.URL = part[:i], part[i+1:]
		}
		u, err := url.Parse(rep.URL)
		if err != nil || u.Scheme == "" || u.Host == "" {
			return nil, fmt.Errorf("replica %q: not a base URL (want http://host:port)", part)
		}
		if rep.Name == "" {
			rep.Name = u.Host
		}
		out = append(out, rep)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no replicas configured")
	}
	seen := make(map[string]bool, len(out))
	for _, r := range out {
		if seen[r.Name] {
			return nil, fmt.Errorf("duplicate replica name %q", r.Name)
		}
		seen[r.Name] = true
	}
	return out, nil
}

// Options configures a Router.
type Options struct {
	Replicas []Replica

	// HealthInterval spaces the background health probes (default 1s).
	HealthInterval time.Duration
	// HealthTimeout bounds one probe (default 500ms).
	HealthTimeout time.Duration
	// Retries caps re-forwards after a dial failure (default 3). Only
	// dial errors retry: the request never reached the replica, so a
	// retry cannot double-execute it. Mid-response failures do not.
	Retries int
	// RetryBackoff is the base of the jittered exponential retry
	// backoff (default 100ms, capped at maxBackoff).
	RetryBackoff time.Duration
	// RetryBudget caps the aggregate retry token bucket (default 10):
	// successful forwards earn RetryBudgetRatio tokens each, every retry
	// spends one, and an empty bucket fails fast instead of amplifying
	// overload (docs/robustness.md).
	RetryBudget float64
	// RetryBudgetRatio is the earn rate per successful forward (default
	// 0.1: at most ~10% of steady-state traffic can be retries).
	RetryBudgetRatio float64
	// BreakerThreshold trips a replica's circuit breaker after this many
	// consecutive forward failures (default 3).
	BreakerThreshold int
	// BreakerCooldown is how long a tripped breaker stays open before
	// half-opening for trial traffic (default 2x HealthInterval).
	BreakerCooldown time.Duration
	// RequestTimeout bounds each forwarded request end-to-end (0 = no
	// deadline). Streaming endpoints (session/stream, session/trace) are
	// exempt — they pace themselves and end on client disconnect.
	RequestTimeout time.Duration
	// MaxBodyBytes bounds buffered request bodies (default 4 MiB,
	// matching the replicas' own limit).
	MaxBodyBytes int64
	// Debug enables routing-decision logging.
	Debug bool
}

type replica struct {
	name    string
	baseURL string
	healthy atomic.Bool
	br      *breaker
}

// available reports whether the replica may receive traffic: the health
// probe says it is up AND its circuit breaker admits the request (a
// half-open breaker admits it as a trial).
func (r *replica) available() bool {
	return r.healthy.Load() && r.br.allow()
}

type sessionRecord struct {
	owner string // replica name that last served the session
	epoch uint64 // ring epoch at that time
}

// Router forwards /api/v1/* to the replica that owns each session.
type Router struct {
	opts     Options
	replicas []*replica
	client   *http.Client

	// epoch counts ring-membership changes (health transitions). A
	// session record stamped with an old epoch means the ring changed
	// under the session — the disambiguator between "session expired"
	// and "session moved" when a replica reports unknown_session.
	epoch atomic.Uint64
	rr    atomic.Uint64 // round-robin cursor for session-less endpoints

	mu       sync.Mutex
	sessions map[string]sessionRecord

	rebalanceMu sync.Mutex // one migration sweep at a time

	budget *retryBudget

	// Robustness counters (served by /admin/metrics).
	forwards      atomic.Uint64 // requests entering handleAPI
	retries       atomic.Uint64 // re-forwards actually performed
	retriesDenied atomic.Uint64 // retries refused by the empty budget
	shedRelayed   atomic.Uint64 // 429 over_capacity responses relayed
	deadlineHits  atomic.Uint64 // requests cut by RequestTimeout
	inFlight      atomic.Int64  // currently forwarding

	mux    *http.ServeMux
	stop   chan struct{}
	stopWG sync.WaitGroup
	debugf func(string, ...any)
}

// New builds a router, synchronously probes every replica once (so
// routing works immediately), and starts the background health loop.
// Call Close to stop it.
func New(opts Options) (*Router, error) {
	if len(opts.Replicas) == 0 {
		return nil, fmt.Errorf("router: no replicas")
	}
	if opts.HealthInterval <= 0 {
		opts.HealthInterval = time.Second
	}
	if opts.HealthTimeout <= 0 {
		opts.HealthTimeout = 500 * time.Millisecond
	}
	if opts.Retries <= 0 {
		opts.Retries = 3
	}
	if opts.RetryBackoff <= 0 {
		opts.RetryBackoff = 100 * time.Millisecond
	}
	if opts.RetryBudget <= 0 {
		opts.RetryBudget = 10
	}
	if opts.RetryBudgetRatio <= 0 {
		opts.RetryBudgetRatio = 0.1
	}
	if opts.BreakerThreshold <= 0 {
		opts.BreakerThreshold = 3
	}
	if opts.BreakerCooldown <= 0 {
		opts.BreakerCooldown = 2 * opts.HealthInterval
	}
	if opts.MaxBodyBytes <= 0 {
		opts.MaxBodyBytes = 4 << 20
	}
	debugf := func(string, ...any) {}
	if opts.Debug {
		debugf = log.Printf
	}
	tr := http.DefaultTransport.(*http.Transport).Clone()
	// Replicas gzip when the client asked for it; relay those bytes
	// untouched instead of inflating them at the router.
	tr.DisableCompression = true
	rt := &Router{
		opts:     opts,
		client:   &http.Client{Transport: tr},
		sessions: make(map[string]sessionRecord),
		mux:      http.NewServeMux(),
		stop:     make(chan struct{}),
		debugf:   debugf,
	}
	rt.budget = newRetryBudget(opts.RetryBudget, opts.RetryBudgetRatio)
	for _, r := range opts.Replicas {
		rt.replicas = append(rt.replicas, &replica{
			name:    r.Name,
			baseURL: strings.TrimRight(r.URL, "/"),
			br:      newBreaker(opts.BreakerThreshold, opts.BreakerCooldown),
		})
	}
	rt.mux.HandleFunc(api.V1Prefix+"/", rt.handleAPI)
	rt.mux.HandleFunc("GET /admin/ring", rt.handleRing)
	rt.mux.HandleFunc("GET /admin/owner", rt.handleOwner)
	rt.mux.HandleFunc("GET /admin/metrics", rt.handleMetrics)
	rt.probeAll()
	rt.stopWG.Add(1)
	go rt.healthLoop()
	return rt, nil
}

// Handler returns the router's HTTP handler.
func (rt *Router) Handler() http.Handler { return rt.mux }

// Close stops the health loop.
func (rt *Router) Close() {
	close(rt.stop)
	rt.stopWG.Wait()
}

// Epoch returns the current ring epoch (bumped on every health
// transition).
func (rt *Router) Epoch() uint64 { return rt.epoch.Load() }

// rendezvousScore is the HRW weight of (session, replica): FNV-1a over
// the pair, NUL-separated so ("ab","c") and ("a","bc") differ.
func rendezvousScore(session, replicaName string) uint64 {
	h := fnv.New64a()
	io.WriteString(h, session)
	h.Write([]byte{0})
	io.WriteString(h, replicaName)
	return h.Sum64()
}

// owner returns the available replica with the top rendezvous score for
// the session, or nil when every replica is down or breaker-excluded.
// The breaker participates in placement on purpose: a replica that
// keeps failing forwards loses its sessions to the next rendezvous
// choice exactly like a dead one, and wins them back through the
// half-open trial when it recovers.
func (rt *Router) owner(session string) *replica {
	var best *replica
	var bestScore uint64
	for _, r := range rt.replicas {
		if !r.available() {
			continue
		}
		s := rendezvousScore(session, r.name)
		if best == nil || s > bestScore || (s == bestScore && r.name < best.name) {
			best, bestScore = r, s
		}
	}
	return best
}

// nextHealthy round-robins over available replicas for session-less
// endpoints (simulate, batch, compile...).
func (rt *Router) nextHealthy() *replica {
	n := len(rt.replicas)
	start := int(rt.rr.Add(1))
	for i := 0; i < n; i++ {
		r := rt.replicas[(start+i)%n]
		if r.available() {
			return r
		}
	}
	return nil
}

func (rt *Router) byName(name string) *replica {
	for _, r := range rt.replicas {
		if r.name == name {
			return r
		}
	}
	return nil
}

// newSessionID draws a random ID of the servers' s%08d form.
func newSessionID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic(err) // crypto/rand does not fail on supported platforms
	}
	return fmt.Sprintf("s%08d", binary.LittleEndian.Uint64(b[:])%100_000_000)
}

// ---- health ----

func (rt *Router) healthLoop() {
	defer rt.stopWG.Done()
	t := time.NewTicker(rt.opts.HealthInterval)
	defer t.Stop()
	for {
		select {
		case <-rt.stop:
			return
		case <-t.C:
			rt.probeAll()
		}
	}
}

// probeAll probes every replica; any transition bumps the epoch, and a
// recovery triggers a migration sweep (sessions the recovered node now
// scores highest on move to it by checkpoint handoff).
func (rt *Router) probeAll() {
	changed, recovered := false, false
	var wg sync.WaitGroup
	var mu sync.Mutex
	for _, r := range rt.replicas {
		wg.Add(1)
		go func(r *replica) {
			defer wg.Done()
			up := rt.probe(r)
			if !up {
				// A failed probe trips the breaker too, so a node that
				// flaps back up re-earns traffic through the half-open
				// trial instead of getting the full load at once.
				r.br.trip()
			} else if !r.healthy.Load() {
				// Probe-confirmed recovery: half-open right away so the
				// rebalance sweep (and trial traffic) can reach the node
				// without waiting out the breaker cooldown.
				r.br.halfOpen()
			}
			if r.healthy.Swap(up) != up {
				mu.Lock()
				changed = true
				recovered = recovered || up
				mu.Unlock()
				rt.debugf("router: replica %s now %s", r.name, map[bool]string{true: "healthy", false: "down"}[up])
			}
		}(r)
	}
	wg.Wait()
	if changed {
		rt.epoch.Add(1)
	}
	if recovered {
		go rt.rebalance()
	}
}

func (rt *Router) probe(r *replica) bool {
	ctx, cancel := contextWithTimeout(rt.opts.HealthTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, r.baseURL+api.V1Prefix+"/health", nil)
	if err != nil {
		return false
	}
	resp, err := rt.client.Do(req)
	if err != nil {
		return false
	}
	io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<10))
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}

// markDown records a dial failure immediately instead of waiting for
// the next probe tick, so the retry path re-resolves owners against an
// up-to-date ring.
func (rt *Router) markDown(r *replica) {
	r.br.trip()
	if r.healthy.Swap(false) {
		rt.epoch.Add(1)
		rt.debugf("router: replica %s marked down (dial failure)", r.name)
	}
}
