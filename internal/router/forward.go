package router

import (
	"bytes"
	"compress/gzip"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"time"

	"riscvsim/internal/api"
)

// createAttempts bounds session-ID collision retries on create paths.
const createAttempts = 5

func contextWithTimeout(d time.Duration) (context.Context, context.CancelFunc) {
	return context.WithTimeout(context.Background(), d)
}

// isDialError reports whether the forward failed before the request
// reached the replica (connection refused / no route). These are always
// safe to retry: the replica never saw the request.
func isDialError(err error) bool {
	var op *net.OpError
	return errors.As(err, &op) && op.Op == "dial"
}

// retryable decides whether a failed forward may be re-resolved onto
// another replica. Dial errors always may (the request never arrived).
// A mid-connection failure (EOF, reset — the shape a killed node takes
// when the router held pooled connections to it) is retried only after
// an immediate health probe confirms the node is actually down: a dead
// replica's sessions live only in its memory, so any partial work died
// with it and a retry on the new owner cannot double-execute. If the
// probe says the node is alive, the failure was a genuine mid-response
// error and retrying could repeat a mutation — fail the request.
func (rt *Router) retryable(target *replica, err error, ctxErr error) bool {
	if ctxErr != nil {
		return false // the client went away; nothing to salvage
	}
	if isDialError(err) {
		rt.markDown(target)
		return true
	}
	if rt.probe(target) {
		return false
	}
	rt.markDown(target)
	return true
}

func writeAPIError(w http.ResponseWriter, status int, code, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(api.ErrorEnvelope{Err: api.Error{Code: code, Message: fmt.Sprintf(format, args...)}})
}

// streamingPath reports whether the endpoint streams its response
// (NDJSON). Streams relay incrementally — no response buffering, and no
// router deadline: they pace themselves and end on client disconnect.
func streamingPath(path string) bool {
	return strings.HasSuffix(path, "/session/stream") || strings.HasSuffix(path, "/session/trace")
}

// writeForwardFailure terminates a failed forward with its typed error.
// A failure caused by the router's own request deadline becomes the
// typed deadline_exceeded (504); everything else keeps the given code,
// and transient rejections carry a Retry-After hint so clients back off
// instead of hammering (docs/robustness.md).
func (rt *Router) writeForwardFailure(w http.ResponseWriter, ctxErr error, status int, code, format string, args ...any) {
	if errors.Is(ctxErr, context.DeadlineExceeded) {
		rt.deadlineHits.Add(1)
		w.Header().Set("Retry-After", "1")
		writeAPIError(w, http.StatusGatewayTimeout, api.CodeDeadlineExceeded, "router: request deadline exceeded")
		return
	}
	if code == api.CodeNodeUnavailable && status != http.StatusBadGateway {
		w.Header().Set("Retry-After", "1")
	}
	writeAPIError(w, status, code, format, args...)
}

// handleAPI dispatches one /api/v1/* request onto the replica that must
// serve it: the rendezvous owner for session-scoped endpoints,
// round-robin for stateless ones.
func (rt *Router) handleAPI(w http.ResponseWriter, r *http.Request) {
	rt.forwards.Add(1)
	rt.inFlight.Add(1)
	defer rt.inFlight.Add(-1)
	if rt.opts.RequestTimeout > 0 && !streamingPath(r.URL.Path) {
		ctx, cancel := context.WithTimeout(r.Context(), rt.opts.RequestTimeout)
		defer cancel()
		r = r.WithContext(ctx)
	}
	body, ok := rt.readBody(w, r)
	if !ok {
		return
	}
	rest := strings.TrimPrefix(r.URL.Path, api.V1Prefix)
	switch {
	case rest == "/session/new" || rest == "/session/restore":
		rt.forwardCreate(w, r, body)
	case rest == "/session/render":
		rt.forwardSession(w, r, body, r.URL.Query().Get("session"))
	case strings.HasPrefix(rest, "/session/") && strings.HasSuffix(rest, "/log"):
		rt.forwardSession(w, r, body, strings.TrimSuffix(strings.TrimPrefix(rest, "/session/"), "/log"))
	case strings.HasPrefix(rest, "/session/"):
		id, err := sessionIDFromBody(body, r.Header.Get("Content-Encoding"))
		if err != nil {
			writeAPIError(w, http.StatusBadRequest, api.CodeBadJSON, "router: %v", err)
			return
		}
		rt.forwardSession(w, r, body, id)
	default:
		rt.forwardStateless(w, r, body)
	}
}

// readBody buffers the request body (bounded) so the forward can be
// retried and the session ID extracted. Returns the raw bytes as
// received — possibly gzipped; they are forwarded verbatim.
func (rt *Router) readBody(w http.ResponseWriter, r *http.Request) ([]byte, bool) {
	if r.Body == nil {
		return nil, true
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, rt.opts.MaxBodyBytes+1))
	if err != nil {
		writeAPIError(w, http.StatusBadRequest, api.CodeBadRequest, "router: reading body: %v", err)
		return nil, false
	}
	if int64(len(body)) > rt.opts.MaxBodyBytes {
		writeAPIError(w, http.StatusRequestEntityTooLarge, api.CodeBodyTooLarge,
			"request body exceeds %d bytes", rt.opts.MaxBodyBytes)
		return nil, false
	}
	return body, true
}

// sessionIDFromBody pulls "sessionId" out of a session-operation body,
// inflating a gzipped copy when the client compressed the request (the
// forwarded bytes stay compressed).
func sessionIDFromBody(body []byte, contentEncoding string) (string, error) {
	raw := body
	if strings.Contains(contentEncoding, "gzip") {
		gr, err := gzip.NewReader(bytes.NewReader(body))
		if err != nil {
			return "", fmt.Errorf("bad gzip body: %v", err)
		}
		raw, err = io.ReadAll(gr)
		if err != nil {
			return "", fmt.Errorf("bad gzip body: %v", err)
		}
	}
	var req struct {
		SessionID string `json:"sessionId"`
	}
	if err := json.Unmarshal(raw, &req); err != nil {
		return "", fmt.Errorf("body is not a session request: %v", err)
	}
	if req.SessionID == "" {
		return "", fmt.Errorf("body carries no sessionId")
	}
	return req.SessionID, nil
}

// forwardOnce sends one copy of the request to a replica. assignID, when
// non-empty, rides the SessionIDHeader (create paths).
func (rt *Router) forwardOnce(target *replica, r *http.Request, body []byte, assignID string) (*http.Response, error) {
	u := target.baseURL + r.URL.Path
	if r.URL.RawQuery != "" {
		u += "?" + r.URL.RawQuery
	}
	req, err := http.NewRequestWithContext(r.Context(), r.Method, u, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	copyHeaders(req.Header, r.Header)
	if assignID != "" {
		req.Header.Set(api.SessionIDHeader, assignID)
	}
	req.ContentLength = int64(len(body))
	return rt.client.Do(req)
}

var hopByHop = map[string]bool{
	"Connection": true, "Keep-Alive": true, "Proxy-Connection": true,
	"Te": true, "Trailer": true, "Transfer-Encoding": true, "Upgrade": true,
}

func copyHeaders(dst, src http.Header) {
	for k, vv := range src {
		if hopByHop[http.CanonicalHeaderKey(k)] {
			continue
		}
		for _, v := range vv {
			dst.Add(k, v)
		}
	}
}

// relay streams a replica response to the client, flushing per chunk so
// NDJSON streams (session/stream) arrive incrementally through the
// router.
func relay(w http.ResponseWriter, resp *http.Response) {
	defer resp.Body.Close()
	copyHeaders(w.Header(), resp.Header)
	w.WriteHeader(resp.StatusCode)
	fl, _ := w.(http.Flusher)
	buf := make([]byte, 32<<10)
	for {
		n, err := resp.Body.Read(buf)
		if n > 0 {
			if _, werr := w.Write(buf[:n]); werr != nil {
				return
			}
			if fl != nil {
				fl.Flush()
			}
		}
		if err != nil {
			return
		}
	}
}

// relayBytes writes an already-buffered replica response.
func relayBytes(w http.ResponseWriter, status int, header http.Header, body []byte) {
	copyHeaders(w.Header(), header)
	w.WriteHeader(status)
	w.Write(body)
}

// bufferResponse drains a response into memory and hands back the bytes
// plus a decompressed view for inspection.
func bufferResponse(resp *http.Response) (raw, inflated []byte, err error) {
	defer resp.Body.Close()
	raw, err = io.ReadAll(resp.Body)
	if err != nil {
		return nil, nil, err
	}
	inflated = raw
	if strings.Contains(resp.Header.Get("Content-Encoding"), "gzip") {
		gr, gerr := gzip.NewReader(bytes.NewReader(raw))
		if gerr != nil {
			return raw, nil, gerr
		}
		inflated, err = io.ReadAll(gr)
		if err != nil {
			return raw, nil, err
		}
	}
	return raw, inflated, nil
}

// errorCode extracts the stable error code from a buffered non-2xx
// replica response.
func errorCode(inflated []byte) string {
	var env api.ErrorEnvelope
	if json.Unmarshal(inflated, &env) != nil {
		return ""
	}
	return env.Err.Code
}

// forwardStateless round-robins a session-less request (simulate,
// batch, compile, schema...) over available replicas. Non-streaming
// responses are buffered before anything reaches the client, so a
// mid-body failure (a replica killed while responding) is still
// retryable under the same probe-confirmed rule as a failed dial —
// the client sees either a complete response or a typed error, never a
// truncated body.
func (rt *Router) forwardStateless(w http.ResponseWriter, r *http.Request, body []byte) {
	var lastErr error
	for attempt := 0; attempt <= rt.opts.Retries; attempt++ {
		target := rt.nextHealthy()
		if target == nil {
			rt.writeForwardFailure(w, r.Context().Err(), http.StatusServiceUnavailable, api.CodeNodeUnavailable, "no healthy replica")
			return
		}
		resp, err := rt.forwardOnce(target, r, body, "")
		if err == nil {
			if streamingPath(r.URL.Path) {
				target.br.onSuccess()
				rt.budget.credit()
				relay(w, resp)
				return
			}
			raw, _, berr := bufferResponse(resp)
			if berr == nil {
				target.br.onSuccess()
				rt.budget.credit()
				if resp.StatusCode == http.StatusTooManyRequests {
					rt.shedRelayed.Add(1)
				}
				relayBytes(w, resp.StatusCode, resp.Header, raw)
				return
			}
			err = berr
		}
		target.br.onFailure()
		if !rt.retryable(target, err, r.Context().Err()) {
			rt.writeForwardFailure(w, r.Context().Err(), http.StatusBadGateway, api.CodeNodeUnavailable, "forward to %s failed: %v", target.name, err)
			return
		}
		if !rt.budget.spend() {
			rt.retriesDenied.Add(1)
			rt.writeForwardFailure(w, r.Context().Err(), http.StatusServiceUnavailable, api.CodeNodeUnavailable, "retry budget exhausted: %v", err)
			return
		}
		rt.retries.Add(1)
		lastErr = err
		time.Sleep(rt.backoff(attempt))
	}
	rt.writeForwardFailure(w, r.Context().Err(), http.StatusServiceUnavailable, api.CodeNodeUnavailable, "retries exhausted: %v", lastErr)
}

// forwardSession routes a session-scoped request to the session's
// rendezvous owner. A dial failure marks the owner down and re-resolves
// — the replacement owner rehydrates the session from the shared store
// if a write-through checkpoint exists. Non-streaming responses are
// buffered before anything reaches the client (see forwardStateless);
// only session/stream and session/trace relay incrementally.
func (rt *Router) forwardSession(w http.ResponseWriter, r *http.Request, body []byte, id string) {
	if id == "" {
		writeAPIError(w, http.StatusBadRequest, api.CodeBadRequest, "router: no session id in request")
		return
	}
	var lastErr error
	for attempt := 0; attempt <= rt.opts.Retries; attempt++ {
		target := rt.owner(id)
		if target == nil {
			rt.writeForwardFailure(w, r.Context().Err(), http.StatusServiceUnavailable, api.CodeNodeUnavailable, "no healthy replica")
			return
		}
		resp, err := rt.forwardOnce(target, r, body, "")
		if err == nil {
			if streamingPath(r.URL.Path) {
				target.br.onSuccess()
				rt.budget.credit()
				rt.finishSessionStream(w, r, id, target, resp)
				return
			}
			raw, inflated, berr := bufferResponse(resp)
			if berr == nil {
				target.br.onSuccess()
				rt.budget.credit()
				if resp.StatusCode == http.StatusTooManyRequests {
					rt.shedRelayed.Add(1)
				}
				rt.finishSession(w, r, id, target, resp.StatusCode, resp.Header, raw, inflated)
				return
			}
			err = berr
		}
		target.br.onFailure()
		if !rt.retryable(target, err, r.Context().Err()) {
			rt.writeForwardFailure(w, r.Context().Err(), http.StatusBadGateway, api.CodeNodeUnavailable, "forward to %s failed: %v", target.name, err)
			return
		}
		if !rt.budget.spend() {
			rt.retriesDenied.Add(1)
			rt.writeForwardFailure(w, r.Context().Err(), http.StatusServiceUnavailable, api.CodeNodeUnavailable, "retry budget exhausted: %v", err)
			return
		}
		rt.retries.Add(1)
		lastErr = err
		rt.debugf("router: session %s: owner %s unreachable, re-resolving", id, target.name)
		time.Sleep(rt.backoff(attempt))
	}
	rt.writeForwardFailure(w, r.Context().Err(), http.StatusServiceUnavailable, api.CodeNodeUnavailable, "retries exhausted: %v", lastErr)
}

// finishSessionStream is finishSession for the incrementally-relayed
// streaming endpoints: update the session table, then stream.
func (rt *Router) finishSessionStream(w http.ResponseWriter, r *http.Request, id string, target *replica, resp *http.Response) {
	if resp.StatusCode < 400 {
		rt.mu.Lock()
		rt.sessions[id] = sessionRecord{owner: target.name, epoch: rt.epoch.Load()}
		rt.mu.Unlock()
	}
	relay(w, resp)
}

// finishSession interprets a buffered session-op response. 2xx updates
// the session table; unknown_session disambiguates between an expired
// session (pass the 404 through) and one orphaned by a ring change with
// no checkpoint to rehydrate from (rewrite to session_moved so the
// client learns the state is gone past its last checkpoint).
func (rt *Router) finishSession(w http.ResponseWriter, r *http.Request, id string, target *replica, status int, header http.Header, raw, inflated []byte) {
	if status < 400 {
		closed := strings.HasSuffix(r.URL.Path, "/session/close")
		rt.mu.Lock()
		if closed {
			delete(rt.sessions, id)
		} else {
			rt.sessions[id] = sessionRecord{owner: target.name, epoch: rt.epoch.Load()}
		}
		rt.mu.Unlock()
		relayBytes(w, status, header, raw)
		return
	}
	if errorCode(inflated) == api.CodeUnknownSession {
		cur := rt.epoch.Load()
		rt.mu.Lock()
		rec, known := rt.sessions[id]
		delete(rt.sessions, id)
		rt.mu.Unlock()
		if known && (rec.epoch != cur || rec.owner != target.name) {
			writeAPIError(w, http.StatusGone, api.CodeSessionMoved,
				"session %s moved off replica %s after a ring change and no checkpoint of it exists; "+
					"state past the last explicit checkpoint is lost — restore a checkpoint or start a new session", id, rec.owner)
			return
		}
	}
	relayBytes(w, status, header, raw)
}

// forwardCreate serves session/new and session/restore: draw a random
// session ID, compute its rendezvous owner, and forward with the ID
// assigned via header. An ID collision (session_exists) redraws.
func (rt *Router) forwardCreate(w http.ResponseWriter, r *http.Request, body []byte) {
	var lastErr error
	for attempt := 0; attempt < createAttempts; attempt++ {
		id := newSessionID()
		target := rt.owner(id)
		if target == nil {
			rt.writeForwardFailure(w, r.Context().Err(), http.StatusServiceUnavailable, api.CodeNodeUnavailable, "no healthy replica")
			return
		}
		resp, err := rt.forwardOnce(target, r, body, id)
		var raw, inflated []byte
		if err == nil {
			// A mid-body failure joins the retry path: the create retries
			// under a FRESH id, so even if the replica created the session
			// before dying, nothing double-executes — the orphan just ages
			// out via the session TTL.
			raw, inflated, err = bufferResponse(resp)
		}
		if err != nil {
			target.br.onFailure()
			if !rt.retryable(target, err, r.Context().Err()) {
				rt.writeForwardFailure(w, r.Context().Err(), http.StatusBadGateway, api.CodeNodeUnavailable, "forward to %s failed: %v", target.name, err)
				return
			}
			if !rt.budget.spend() {
				rt.retriesDenied.Add(1)
				rt.writeForwardFailure(w, r.Context().Err(), http.StatusServiceUnavailable, api.CodeNodeUnavailable, "retry budget exhausted: %v", err)
				return
			}
			rt.retries.Add(1)
			lastErr = err
			time.Sleep(rt.backoff(attempt))
			continue
		}
		target.br.onSuccess()
		rt.budget.credit()
		if resp.StatusCode == http.StatusTooManyRequests {
			rt.shedRelayed.Add(1)
		}
		if resp.StatusCode == http.StatusConflict && errorCode(inflated) == api.CodeSessionExists {
			rt.debugf("router: session id %s collided on %s, redrawing", id, target.name)
			continue
		}
		if resp.StatusCode < 400 {
			// Trust the response over the assignment: a replica running
			// without -assigned-ids generates its own ID, and recording
			// the wrong one would misroute every follow-up.
			var created struct {
				SessionID string `json:"sessionId"`
			}
			if json.Unmarshal(inflated, &created) == nil && created.SessionID != "" {
				if created.SessionID != id {
					rt.debugf("router: replica %s ignored assigned id %s (returned %s) — run it with -assigned-ids", target.name, id, created.SessionID)
				}
				rt.mu.Lock()
				rt.sessions[created.SessionID] = sessionRecord{owner: target.name, epoch: rt.epoch.Load()}
				rt.mu.Unlock()
			}
		}
		relayBytes(w, resp.StatusCode, resp.Header, raw)
		return
	}
	rt.writeForwardFailure(w, r.Context().Err(), http.StatusServiceUnavailable, api.CodeNodeUnavailable, "session create kept failing: %v", lastErr)
}

// ---- migration ----

// rebalance sweeps the session table after a replica recovers: every
// session whose rendezvous owner changed while its current host is
// still alive moves by checkpoint handoff — checkpoint on the old
// owner, restore under the same ID on the new one. The old copy is left
// to TTL eviction; its eventual stale spill loses the version race by
// design. Sessions on dead hosts need no sweep: the next request
// rehydrates them from the store on the new owner.
func (rt *Router) rebalance() {
	rt.rebalanceMu.Lock()
	defer rt.rebalanceMu.Unlock()
	rt.mu.Lock()
	snapshot := make(map[string]sessionRecord, len(rt.sessions))
	for id, rec := range rt.sessions {
		snapshot[id] = rec
	}
	rt.mu.Unlock()
	for id, rec := range snapshot {
		want := rt.owner(id)
		from := rt.byName(rec.owner)
		if want == nil || from == nil || want.name == rec.owner || !from.healthy.Load() {
			continue
		}
		if err := rt.migrate(id, from, want); err != nil {
			rt.debugf("router: migrating %s %s->%s failed: %v (will rehydrate lazily)", id, from.name, want.name, err)
			continue
		}
		rt.mu.Lock()
		// Only move the record if nothing re-owned the session meanwhile.
		if cur, ok := rt.sessions[id]; ok && cur == rec {
			rt.sessions[id] = sessionRecord{owner: want.name, epoch: rt.epoch.Load()}
		}
		rt.mu.Unlock()
		rt.debugf("router: migrated session %s %s -> %s", id, from.name, want.name)
	}
}

// migrate hands one live session over: checkpoint from the old owner,
// restore under the same ID on the new owner. Both documents travel the
// public API, so the handoff is bit-exact by the same checkpoint
// determinism the clients rely on.
func (rt *Router) migrate(id string, from, to *replica) error {
	ctx, cancel := contextWithTimeout(30 * time.Second)
	defer cancel()
	ckptBody, _ := json.Marshal(api.SessionCheckpointRequest{SessionID: id})
	var ckptResp api.SessionCheckpointResponse
	if err := rt.postJSON(ctx, from, "/session/checkpoint", ckptBody, "", &ckptResp); err != nil {
		return fmt.Errorf("checkpoint on %s: %w", from.name, err)
	}
	restBody, _ := json.Marshal(api.SessionRestoreRequest{Checkpoint: ckptResp.Checkpoint})
	var restResp api.SessionNewResponse
	if err := rt.postJSON(ctx, to, "/session/restore", restBody, id, &restResp); err != nil {
		return fmt.Errorf("restore on %s: %w", to.name, err)
	}
	if restResp.SessionID != id {
		return fmt.Errorf("restore on %s assigned %s instead of %s (is it running with -assigned-ids?)", to.name, restResp.SessionID, id)
	}
	return nil
}

// postJSON is the router's own API call path (migration traffic).
func (rt *Router) postJSON(ctx context.Context, target *replica, path string, body []byte, assignID string, out any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, target.baseURL+api.V1Prefix+path, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	if assignID != "" {
		req.Header.Set(api.SessionIDHeader, assignID)
	}
	resp, err := rt.client.Do(req)
	if err != nil {
		return err
	}
	_, inflated, err := bufferResponse(resp)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s: HTTP %d [%s]", path, resp.StatusCode, errorCode(inflated))
	}
	return json.Unmarshal(inflated, out)
}

// ---- admin ----

// RingEntry is one replica's row in the /admin/ring response.
type RingEntry struct {
	Name    string `json:"name"`
	URL     string `json:"url"`
	Healthy bool   `json:"healthy"`
	Breaker string `json:"breaker"` // closed | half-open | open
}

// RingResponse is the /admin/ring document.
type RingResponse struct {
	Epoch    uint64      `json:"epoch"`
	Sessions int         `json:"sessions"`
	Replicas []RingEntry `json:"replicas"`
}

// OwnerResponse is the /admin/owner document: which replica a session
// ID hashes to right now.
type OwnerResponse struct {
	Session string `json:"session"`
	Owner   string `json:"owner"`
	URL     string `json:"url"`
	Epoch   uint64 `json:"epoch"`
}

func (rt *Router) handleRing(w http.ResponseWriter, r *http.Request) {
	rt.mu.Lock()
	n := len(rt.sessions)
	rt.mu.Unlock()
	out := RingResponse{Epoch: rt.epoch.Load(), Sessions: n}
	for _, rep := range rt.replicas {
		out.Replicas = append(out.Replicas, RingEntry{
			Name: rep.name, URL: rep.baseURL,
			Healthy: rep.healthy.Load(), Breaker: rep.br.stateName(),
		})
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(out)
}

// RouterMetrics is the /admin/metrics document: the router's robustness
// counters and per-replica breaker states (docs/robustness.md). The
// chaos tests assert these move under injected faults.
type RouterMetrics struct {
	Forwards         uint64      `json:"forwards"`
	Retries          uint64      `json:"retries"`
	RetriesDenied    uint64      `json:"retriesDenied"`
	Shed             uint64      `json:"shed"` // 429 over_capacity responses relayed
	DeadlineExceeded uint64      `json:"deadlineExceeded"`
	InFlight         int64       `json:"inFlight"`
	Epoch            uint64      `json:"epoch"`
	Replicas         []RingEntry `json:"replicas"`
}

// Metrics snapshots the robustness counters.
func (rt *Router) Metrics() RouterMetrics {
	m := RouterMetrics{
		Forwards:         rt.forwards.Load(),
		Retries:          rt.retries.Load(),
		RetriesDenied:    rt.retriesDenied.Load(),
		Shed:             rt.shedRelayed.Load(),
		DeadlineExceeded: rt.deadlineHits.Load(),
		InFlight:         rt.inFlight.Load(),
		Epoch:            rt.epoch.Load(),
	}
	for _, rep := range rt.replicas {
		m.Replicas = append(m.Replicas, RingEntry{
			Name: rep.name, URL: rep.baseURL,
			Healthy: rep.healthy.Load(), Breaker: rep.br.stateName(),
		})
	}
	return m
}

func (rt *Router) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(rt.Metrics())
}

func (rt *Router) handleOwner(w http.ResponseWriter, r *http.Request) {
	id := r.URL.Query().Get("session")
	if id == "" {
		writeAPIError(w, http.StatusBadRequest, api.CodeBadRequest, "missing ?session=")
		return
	}
	target := rt.owner(id)
	if target == nil {
		writeAPIError(w, http.StatusServiceUnavailable, api.CodeNodeUnavailable, "no healthy replica")
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(OwnerResponse{Session: id, Owner: target.name, URL: target.baseURL, Epoch: rt.epoch.Load()})
}
