package router

import (
	"net/http"
	"net/http/httptest"
	"runtime"
	"testing"
	"time"

	"riscvsim/internal/api"
	"riscvsim/internal/client"
	"riscvsim/internal/server"
	"riscvsim/internal/store"
)

// waitGoroutines polls until the process goroutine count drops back to
// at most want, or the deadline passes — closing servers and transports
// reaps goroutines asynchronously.
func waitGoroutines(t *testing.T, want int, within time.Duration) {
	t.Helper()
	deadline := time.Now().Add(within)
	for {
		if n := runtime.NumGoroutine(); n <= want {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked: %d running, want <= %d\n%s",
				runtime.NumGoroutine(), want, buf[:n])
		}
		time.Sleep(25 * time.Millisecond)
	}
}

// TestRouterForwarderDoesNotLeakGoroutines: a router that forwarded
// traffic — including failed forwards to a dead replica, retries, and
// the health-probe loop — must release every goroutine on Close. A
// leak here compounds per request in production.
func TestRouterForwarderDoesNotLeakGoroutines(t *testing.T) {
	before := runtime.NumGoroutine()

	backend := store.NewMem()
	live := httptest.NewServer(server.New(server.Options{
		MaxSessions: 16, Store: backend, WriteThrough: true, AllowAssignedIDs: true,
	}).Handler())
	dead := httptest.NewServer(http.NotFoundHandler())
	deadURL := dead.URL
	dead.Close() // address now refuses connections: every forward to it fails

	rt, err := New(Options{
		Replicas: []Replica{
			{Name: "sim1", URL: live.URL},
			{Name: "sim2", URL: deadURL},
		},
		HealthInterval: 25 * time.Millisecond,
		HealthTimeout:  200 * time.Millisecond,
		RetryBackoff:   5 * time.Millisecond,
		RequestTimeout: 2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	routerTS := httptest.NewServer(rt.Handler())

	cl := client.NewForURL(routerTS.URL, false)
	for i := 0; i < 10; i++ {
		// Mix of outcomes: stateless forwards, session traffic (some
		// owned by the dead replica → failover/retry paths), metrics.
		cl.Simulate(&api.SimulateRequest{Code: "addi t0, t0, 1\n", Steps: 100})
		if sess, err := cl.NewSession(&api.SessionNewRequest{
			SimulateRequest: api.SimulateRequest{Code: "loop: addi t0, t0, 1\nbeq x0, x0, loop\n"},
		}); err == nil {
			cl.Step(sess.SessionID, 50)
			cl.Checkpoint(sess.SessionID)
		}
		cl.Metrics()
	}

	routerTS.Close()
	rt.Close()
	live.Close()
	waitGoroutines(t, before, 5*time.Second)
}
