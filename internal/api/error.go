package api

import (
	"errors"
	"fmt"

	"riscvsim/internal/ckpt"
)

// Stable machine-readable error codes of the v1 protocol. Clients dispatch
// on Code; Message is human-readable diagnostic text and carries no
// stability guarantee.
const (
	// CodeBadJSON: the request body is not valid JSON for the expected
	// document shape.
	CodeBadJSON = "bad_json"
	// CodeBadRequest: the request parsed but is semantically invalid
	// (missing fields, out-of-range values).
	CodeBadRequest = "bad_request"
	// CodeBodyTooLarge: the request body exceeds the server's
	// MaxBodyBytes limit.
	CodeBodyTooLarge = "body_too_large"
	// CodeUnknownPreset: SimulateRequest.Preset names no known preset.
	CodeUnknownPreset = "unknown_preset"
	// CodeBadConfig: the architecture configuration document is invalid.
	CodeBadConfig = "bad_config"
	// CodeBuildFailed: the program failed to assemble or compile.
	CodeBuildFailed = "build_failed"
	// CodeMemFill: a MemFill entry is invalid or exceeds its allocation.
	CodeMemFill = "mem_fill_failed"
	// CodeUnknownSession: the session ID is unknown (closed or evicted).
	CodeUnknownSession = "unknown_session"
	// CodeBatchTooLarge: a batch carries more requests than the server
	// accepts in one call.
	CodeBatchTooLarge = "batch_too_large"
	// CodeUnprocessable: a session operation failed on a valid session
	// (e.g. goto past the end of the debug log).
	CodeUnprocessable = "unprocessable"
	// CodeRewindBarrier: backward navigation (goto / negative step) was
	// refused because the target lies below the session's rewind barrier —
	// the region was executed fast-forward or time-parallel and has no
	// detailed timing history to replay. Forward navigation from the
	// barrier remains available.
	CodeRewindBarrier = "rewind_barrier"
	// CodeBadFilter: a workload-suite filter term matches nothing in the
	// embedded corpus.
	CodeBadFilter = "bad_filter"
	// CodeBadTrace: the trace options are invalid (unknown stage name,
	// malformed PC range, out-of-range limit).
	CodeBadTrace = "bad_trace"
	// CodeInternal: the server failed to produce a response.
	CodeInternal = "internal"

	// Distributed-tier codes (docs/deployment.md).

	// CodeSessionExists: a session create carried an assigned session ID
	// (SessionIDHeader) that is already live on the node. The router
	// retries the create with a fresh ID.
	CodeSessionExists = "session_exists"
	// CodeSessionMoved: the session's owner replica changed (a node
	// died or the ring changed) and no checkpoint of it exists in the
	// shared store — state past the last checkpoint is lost. Clients
	// restart the session or restore a checkpoint they hold; the last
	// explicit checkpoint is the durability boundary.
	CodeSessionMoved = "session_moved"
	// CodeNodeUnavailable: the router could not complete the request on
	// any healthy replica (all down, or the forward kept failing).
	// Transient by design — clients retry with backoff.
	CodeNodeUnavailable = "node_unavailable"

	// Overload-protection codes (docs/robustness.md).

	// CodeOverCapacity: the node (or router) is at its admission limit —
	// the in-flight simulation cap is reached and the bounded wait queue
	// is full. The response carries a Retry-After header; clients back
	// off and retry. Load is shed, never queued unboundedly, so the tier
	// degrades to fast typed rejections instead of collapsing.
	CodeOverCapacity = "over_capacity"
	// CodeDeadlineExceeded: the per-request deadline elapsed before the
	// operation completed. For session operations the session remains
	// valid at whatever state the work reached — NOT the state before
	// the request — so clients re-read the session state before issuing
	// more work (a blind step retry would advance past the target). For
	// stateless simulations no state survives and a retry is safe.
	CodeDeadlineExceeded = "deadline_exceeded"

	// Checkpoint codes (POST /api/v1/session/{checkpoint,restore} and
	// checkpoint-carrying simulate/batch requests).

	// CodeBadCheckpoint: the stream is not a checkpoint (bad magic) or
	// its structure is corrupt.
	CodeBadCheckpoint = "bad_checkpoint"
	// CodeCheckpointVersion: the checkpoint's format version is newer
	// than this server supports.
	CodeCheckpointVersion = "checkpoint_version_unsupported"
	// CodeCheckpointConfig: the embedded architecture document fails its
	// integrity hash.
	CodeCheckpointConfig = "checkpoint_config_mismatch"
	// CodeCheckpointTruncated: the checkpoint stream ended early.
	CodeCheckpointTruncated = "checkpoint_truncated"
)

// SessionIDHeader carries a caller-assigned session ID on session
// create/restore requests. Only servers running with AllowAssignedIDs
// honor it; the consistent-hash router uses it so a session's owner
// replica is computable from the ID before the session exists.
const SessionIDHeader = "X-Riscvsim-Session-Id"

// CheckpointError maps a sim.Restore / Machine.Checkpoint failure onto
// the stable checkpoint error codes via the ckpt sentinel errors.
func CheckpointError(err error) *Error {
	code := CodeBadCheckpoint
	switch {
	case errors.Is(err, ckpt.ErrVersion):
		code = CodeCheckpointVersion
	case errors.Is(err, ckpt.ErrConfigHash):
		code = CodeCheckpointConfig
	case errors.Is(err, ckpt.ErrTruncated):
		code = CodeCheckpointTruncated
	}
	return &Error{Code: code, Message: err.Error()}
}

// Error is the v1 machine-readable error. It implements the error
// interface so handlers can return it directly.
type Error struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

// Error implements the error interface.
func (e *Error) Error() string { return e.Message }

// Errorf builds an *Error with a stable code and a formatted message.
func Errorf(code, format string, args ...any) *Error {
	return &Error{Code: code, Message: fmt.Sprintf(format, args...)}
}

// WrapError attaches a stable code to an arbitrary error, preserving an
// existing *Error's code.
func WrapError(code string, err error) *Error {
	if ae, ok := err.(*Error); ok {
		return ae
	}
	return &Error{Code: code, Message: err.Error()}
}

// ErrorEnvelope is the uniform error response body:
//
//	{"error": {"code": "build_failed", "message": "line 3: ..."}}
//
// Every non-2xx v1 response (and every legacy-alias error response)
// carries this shape.
type ErrorEnvelope struct {
	Err Error `json:"error"`
}
