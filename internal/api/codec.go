package api

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"mime"
	"sync"
)

// A Codec serializes protocol documents. The paper measures JSON handling
// at ~60% of request time (§IV-A); making the codec an explicit, swappable
// component turns that share into something that can be measured per
// implementation (see /api/v1/metrics) and replaced without touching
// handlers.
type Codec interface {
	// Name identifies the codec in negotiation and metrics ("json",
	// "pooled").
	Name() string
	// ContentType is the media type the codec produces.
	ContentType() string
	// Encode writes v to w.
	Encode(w io.Writer, v any) error
	// Decode reads one document from r into v.
	Decode(r io.Reader, v any) error
}

// Media types of the v1 protocol.
const (
	MediaTypeJSON   = "application/json"
	MediaTypeNDJSON = "application/x-ndjson"
	// CodecParam is the media-type parameter selecting a codec, e.g.
	// "application/json; codec=pooled".
	CodecParam = "codec"
)

// ---------------------------------------------------------------------------
// json codec: the baseline encoding/json path (whole-document Marshal).
// ---------------------------------------------------------------------------

type jsonCodec struct{}

func (jsonCodec) Name() string        { return "json" }
func (jsonCodec) ContentType() string { return MediaTypeJSON }

func (jsonCodec) Encode(w io.Writer, v any) error {
	data, err := json.Marshal(v)
	if err != nil {
		return err
	}
	_, err = w.Write(data)
	return err
}

func (jsonCodec) Decode(r io.Reader, v any) error {
	data, err := io.ReadAll(r)
	if err != nil {
		return err
	}
	return json.Unmarshal(data, v)
}

// ---------------------------------------------------------------------------
// pooled codec: json.Encoder/Decoder over sync.Pool-ed buffers. Encoding
// streams into a recycled buffer instead of allocating a fresh document
// slice per response; decoding streams off the body without the ReadAll
// copy. Same wire format as the json codec — only the cost differs.
// ---------------------------------------------------------------------------

// maxPooledBuffer bounds what goes back in the pool so one huge state
// response doesn't pin memory forever.
const maxPooledBuffer = 1 << 20

var bufferPool = sync.Pool{
	New: func() any { return new(bytes.Buffer) },
}

// GetBuffer fetches a recycled buffer. Callers must PutBuffer it back.
func GetBuffer() *bytes.Buffer { return bufferPool.Get().(*bytes.Buffer) }

// PutBuffer recycles a buffer obtained from GetBuffer.
func PutBuffer(b *bytes.Buffer) {
	if b.Cap() > maxPooledBuffer {
		return
	}
	b.Reset()
	bufferPool.Put(b)
}

type pooledCodec struct{}

func (pooledCodec) Name() string        { return "pooled" }
func (pooledCodec) ContentType() string { return MediaTypeJSON + "; " + CodecParam + "=pooled" }

func (pooledCodec) Encode(w io.Writer, v any) error {
	if buf, ok := w.(*bytes.Buffer); ok {
		// Already buffered (the server's response path): stream straight in.
		return json.NewEncoder(buf).Encode(v)
	}
	buf := GetBuffer()
	defer PutBuffer(buf)
	if err := json.NewEncoder(buf).Encode(v); err != nil {
		return err
	}
	_, err := w.Write(buf.Bytes())
	return err
}

func (pooledCodec) Decode(r io.Reader, v any) error {
	dec := json.NewDecoder(r)
	if err := dec.Decode(v); err != nil {
		return err
	}
	// Reject trailing data so both codecs accept exactly the same
	// bodies (json.Unmarshal fails on anything after the document).
	if t, err := dec.Token(); err != io.EOF {
		if err != nil {
			return err
		}
		return fmt.Errorf("unexpected data after JSON document: %v", t)
	}
	return nil
}

// ---------------------------------------------------------------------------
// Registry and negotiation
// ---------------------------------------------------------------------------

var (
	// JSONCodec is the baseline encoding/json implementation.
	JSONCodec Codec = jsonCodec{}
	// PooledCodec is the pooled-buffer streaming implementation.
	PooledCodec Codec = pooledCodec{}

	codecs = map[string]Codec{
		JSONCodec.Name():   JSONCodec,
		PooledCodec.Name(): PooledCodec,
	}
)

// CodecNames lists the registered codec names (for metrics initialisation).
func CodecNames() []string {
	return []string{JSONCodec.Name(), PooledCodec.Name()}
}

// CodecByName resolves a codec by its registered name.
func CodecByName(name string) (Codec, bool) {
	c, ok := codecs[name]
	return c, ok
}

// codecForMediaType picks the codec requested by a media-type value such
// as "application/json; codec=pooled". Empty, unparsable, or unknown
// values fall back to def.
func codecForMediaType(value string, def Codec) Codec {
	if value == "" {
		return def
	}
	_, params, err := mime.ParseMediaType(value)
	if err != nil {
		return def
	}
	if c, ok := codecs[params[CodecParam]]; ok {
		return c
	}
	return def
}

// Negotiate selects the request codec from Content-Type and the response
// codec from Accept. The default is the baseline json codec, so legacy
// clients keep their exact behaviour; v1 clients opt into the pooled
// codec via "codec=pooled".
func Negotiate(contentType, accept string) (reqCodec, respCodec Codec) {
	return codecForMediaType(contentType, JSONCodec), codecForMediaType(accept, JSONCodec)
}
