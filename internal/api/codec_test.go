package api

import (
	"bytes"
	"strings"
	"testing"
)

func TestCodecsRoundTripIdentically(t *testing.T) {
	doc := &SimulateRequest{
		Code:     "li a0, 1",
		Steps:    42,
		MemFills: []MemFill{{Label: "data", Values: []int64{1, 2, 3}}},
	}
	for _, c := range []Codec{JSONCodec, PooledCodec} {
		var buf bytes.Buffer
		if err := c.Encode(&buf, doc); err != nil {
			t.Fatalf("%s encode: %v", c.Name(), err)
		}
		var back SimulateRequest
		if err := c.Decode(&buf, &back); err != nil {
			t.Fatalf("%s decode: %v", c.Name(), err)
		}
		if back.Code != doc.Code || back.Steps != doc.Steps || len(back.MemFills) != 1 {
			t.Errorf("%s round trip mangled the document: %+v", c.Name(), back)
		}
	}
}

func TestCodecsProduceSameWireFormat(t *testing.T) {
	doc := &SimulateResponse{Halted: true, Cycles: 7}
	var a, b bytes.Buffer
	if err := JSONCodec.Encode(&a, doc); err != nil {
		t.Fatal(err)
	}
	if err := PooledCodec.Encode(&b, doc); err != nil {
		t.Fatal(err)
	}
	// json.Encoder appends a newline; the documents must match modulo that.
	if strings.TrimSpace(a.String()) != strings.TrimSpace(b.String()) {
		t.Errorf("wire formats differ:\njson:   %s\npooled: %s", a.String(), b.String())
	}
}

func TestCodecsRejectTrailingData(t *testing.T) {
	// Both codecs must accept exactly the same bodies: a document with
	// trailing garbage is invalid everywhere.
	for _, c := range []Codec{JSONCodec, PooledCodec} {
		var v SimulateRequest
		if err := c.Decode(strings.NewReader(`{"code":"nop"} trailing`), &v); err == nil {
			t.Errorf("%s accepted trailing garbage", c.Name())
		}
		// Trailing whitespace is fine in both.
		if err := c.Decode(strings.NewReader(`{"code":"nop"}`+"\n \t"), &v); err != nil {
			t.Errorf("%s rejected trailing whitespace: %v", c.Name(), err)
		}
		// A second JSON document is also trailing data.
		if err := c.Decode(strings.NewReader(`{"code":"a"}{"code":"b"}`), &v); err == nil {
			t.Errorf("%s accepted a second document", c.Name())
		}
	}
}

func TestNegotiate(t *testing.T) {
	cases := []struct {
		contentType, accept string
		wantReq, wantResp   string
	}{
		{"", "", "json", "json"},
		{"application/json", "application/json", "json", "json"},
		{"application/json; codec=pooled", "application/json", "pooled", "json"},
		{"application/json", "application/json; codec=pooled", "json", "pooled"},
		{"application/json; codec=nope", "garbage;;;", "json", "json"},
	}
	for _, c := range cases {
		req, resp := Negotiate(c.contentType, c.accept)
		if req.Name() != c.wantReq || resp.Name() != c.wantResp {
			t.Errorf("Negotiate(%q, %q) = %s/%s, want %s/%s",
				c.contentType, c.accept, req.Name(), resp.Name(), c.wantReq, c.wantResp)
		}
	}
}

func TestCodecByName(t *testing.T) {
	for _, name := range CodecNames() {
		c, ok := CodecByName(name)
		if !ok || c.Name() != name {
			t.Errorf("CodecByName(%q) = %v, %v", name, c, ok)
		}
	}
	if _, ok := CodecByName("protobuf"); ok {
		t.Error("unknown codec resolved")
	}
}

func TestBufferPoolRecycles(t *testing.T) {
	b := GetBuffer()
	b.WriteString("payload")
	PutBuffer(b)
	b2 := GetBuffer()
	defer PutBuffer(b2)
	if b2.Len() != 0 {
		t.Error("recycled buffer not reset")
	}
}

func TestErrorHelpers(t *testing.T) {
	e := Errorf(CodeBuildFailed, "line %d: %s", 3, "boom")
	if e.Code != CodeBuildFailed || e.Message != "line 3: boom" || e.Error() != e.Message {
		t.Errorf("Errorf = %+v", e)
	}
	// WrapError preserves an existing code.
	w := WrapError(CodeInternal, e)
	if w.Code != CodeBuildFailed {
		t.Errorf("WrapError clobbered the code: %+v", w)
	}
}
