// Package api defines the simulator's versioned wire contract (v1): the
// typed request/response documents served under /api/v1/, the
// machine-readable error envelope with stable codes, and the Codec
// abstraction that makes serialization cost a measured, swappable
// component (the paper profiles JSON handling at ~60% of request time,
// §IV-A).
//
// The package is imported by both the server and the client, so the two
// sides can never drift: the contract is these Go types. docs/api.md
// documents the HTTP surface for non-Go clients.
package api

import (
	"encoding/json"

	"riscvsim/internal/workload"
	"riscvsim/sim"
)

// V1Prefix is the path prefix of the versioned API.
const V1Prefix = "/api/v1"

// MemFill populates a labelled allocation before simulation, mirroring the
// Memory Settings window (user values, repeated constants or random
// values; paper §II-C).
type MemFill struct {
	Label    string  `json:"label"`
	Values   []int64 `json:"values,omitempty"`
	ElemSize int     `json:"elemSize,omitempty"` // 1, 2, 4 or 8; default 4
	Repeat   int     `json:"repeat,omitempty"`   // repeat Values[0] n times
	Random   int     `json:"random,omitempty"`   // n random values
	Seed     int64   `json:"seed,omitempty"`     // deterministic seed
}

// SimulateRequest runs a batch simulation.
type SimulateRequest struct {
	// Code is RISC-V assembly, or C when Language == "c".
	Code     string `json:"code"`
	Language string `json:"language,omitempty"`
	Optimize int    `json:"optimize,omitempty"`
	// Entry is the entry label ("" = first instruction / main for C).
	Entry string `json:"entry,omitempty"`
	// Preset selects a named architecture; Config overrides it with a
	// full architecture document.
	Preset string           `json:"preset,omitempty"`
	Config *json.RawMessage `json:"config,omitempty"`
	// Steps limits the simulation (0 = run to completion).
	Steps uint64 `json:"steps,omitempty"`
	// MemFills populate data arrays before the run.
	MemFills []MemFill `json:"memFills,omitempty"`
	// IncludeState requests the full processor snapshot.
	IncludeState bool `json:"includeState,omitempty"`
	// IncludeLog requests the debug log.
	IncludeLog bool `json:"includeLog,omitempty"`
	// Verbose enables per-event debug logging (commit and flush lines).
	// Off by default: the hot path then formats no log messages at all.
	Verbose bool `json:"verbose,omitempty"`
	// Checkpoint, when set, restores the machine from a binary snapshot
	// (base64 in JSON) instead of building it from Code/Preset/Config;
	// MemFills still apply afterwards, so sweeps can fork one warm
	// checkpoint into N variants.
	Checkpoint []byte `json:"checkpoint,omitempty"`
	// Trace, when set, attaches a bounded pipeline-trace collector for
	// the run and returns its contents in SimulateResponse.Trace. Works
	// for source builds and checkpoint restores alike.
	Trace *TraceOptions `json:"trace,omitempty"`
	// FastForward runs the program in the fast-forward functional mode:
	// fused basic-block execution of architectural state only, one
	// committed instruction per reported cycle, no pipeline timing. The
	// final architectural state (registers, memory, halt reason) is
	// identical to a detailed run; timing statistics are not meaningful.
	FastForward bool `json:"fastForward,omitempty"`
	// Parallelism, when >= 2, runs the simulation time-parallel
	// (docs/parallel.md): the run is split into up to Parallelism
	// committed-instruction intervals, each warmed speculatively via
	// fast-forward and simulated in detailed mode concurrently, with
	// speculation verified at every boundary. The final architectural
	// state is bit-exact versus a serial run; timing statistics are
	// stitched per-interval deltas whose accuracy is bounded by the
	// warm-up length. Requires a terminating program (Steps still bounds
	// the run) and a from-source build; mutually exclusive with
	// FastForward, Trace and Checkpoint.
	Parallelism int `json:"parallelism,omitempty"`
	// WarmupCycles is the per-interval detailed warm-up length, in
	// committed instructions, whose metrics are discarded before interval
	// measurement begins (0 selects the default; only meaningful with
	// Parallelism >= 2).
	WarmupCycles uint64 `json:"warmupCycles,omitempty"`
}

// MaxParallelism caps SimulateRequest.Parallelism server-side: each
// worker holds a full dynamic-state fork, so the knob is clamped rather
// than trusted.
const MaxParallelism = 32

// ParallelInfo reports how a time-parallel run was split and verified.
type ParallelInfo struct {
	// Workers is the number of intervals actually simulated (the
	// requested parallelism shrinks on short runs, down to 1 = serial).
	Workers int `json:"workers"`
	// Healed counts intervals whose speculative start state was refuted
	// at verification and that were re-run from the exact state.
	Healed int `json:"healed"`
	// Intervals describes each interval's committed-instruction range.
	Intervals []sim.IntervalResult `json:"intervals,omitempty"`
}

// TraceOptions configures pipeline tracing for a run (docs/trace.md).
type TraceOptions struct {
	// Stages filters by stage name, comma-separated ("fetch,commit");
	// "" and "all" keep every stage.
	Stages string `json:"stages,omitempty"`
	// PCRange filters by code index, "lo:hi" inclusive; either side may
	// be empty.
	PCRange string `json:"pcRange,omitempty"`
	// Limit bounds the buffered events (default 4096, max 65536); the
	// collector keeps the newest events and counts the dropped ones.
	Limit int `json:"limit,omitempty"`
}

// Trace limits: the default and maximum ring capacity a request may ask
// for, and the ceiling on streamed events.
const (
	DefaultTraceLimit    = 4096
	MaxTraceLimit        = 65536
	MaxTraceStreamEvents = 1_000_000
)

// TraceResult carries the collected ring buffer back in the v1 envelope.
type TraceResult struct {
	// Events are the newest matching events, oldest first.
	Events []sim.StageEvent `json:"events"`
	// Total counts every event that matched the filter during the run.
	Total uint64 `json:"total"`
	// Dropped counts matching events evicted by the Limit bound.
	Dropped uint64 `json:"dropped"`
}

// SimulateResponse carries results.
type SimulateResponse struct {
	Halted     bool           `json:"halted"`
	HaltReason string         `json:"haltReason,omitempty"`
	Cycles     uint64         `json:"cycles"`
	Stats      *sim.Report    `json:"stats"`
	State      *sim.State     `json:"state,omitempty"`
	Log        []sim.LogEntry `json:"log,omitempty"`
	Trace      *TraceResult   `json:"trace,omitempty"`
	// Parallel describes how a Parallelism >= 2 run was split and
	// verified; nil on serial runs.
	Parallel *ParallelInfo `json:"parallel,omitempty"`
}

// CompileRequest compiles C to assembly.
type CompileRequest struct {
	Code     string `json:"code"`
	Optimize int    `json:"optimize"`
	Filter   bool   `json:"filter,omitempty"`
}

// CompileResponse mirrors the paper's compiler round trip: assembly plus a
// log of potential compiler errors (§III-C).
type CompileResponse struct {
	Assembly string `json:"assembly,omitempty"`
	LineMap  []int  `json:"lineMap,omitempty"`
	Errors   string `json:"errors,omitempty"`
}

// ParseAsmRequest validates assembly (editor squiggles).
type ParseAsmRequest struct {
	Code string `json:"code"`
}

// ParseAsmResponse lists diagnostics. It doubles as the /checkConfig
// response (same OK/diagnostics shape).
type ParseAsmResponse struct {
	OK     bool   `json:"ok"`
	Errors string `json:"errors,omitempty"`
}

// ---------------------------------------------------------------------------
// Sessions
// ---------------------------------------------------------------------------

// SessionNewRequest starts an interactive session (one web-client tab).
type SessionNewRequest struct {
	SimulateRequest
}

// SessionNewResponse returns the session handle and the initial state.
type SessionNewResponse struct {
	SessionID string     `json:"sessionId"`
	State     *sim.State `json:"state"`
}

// SessionStepRequest advances or rewinds a session. Negative steps rewind
// (the paper's backward simulation, available only interactively and
// intended for small programs, §III-B).
type SessionStepRequest struct {
	SessionID string `json:"sessionId"`
	Steps     int64  `json:"steps"`
	// IncludeLog attaches the debug log to the state.
	IncludeLog bool `json:"includeLog,omitempty"`
}

// SessionStateResponse returns the post-step state.
type SessionStateResponse struct {
	State *sim.State `json:"state"`
}

// SessionGotoRequest jumps to an absolute cycle (debug-log navigation:
// "clicking on the message number navigates the simulation to that
// specific cycle", paper §II-A).
type SessionGotoRequest struct {
	SessionID string `json:"sessionId"`
	Cycle     uint64 `json:"cycle"`
}

// SessionCloseRequest ends a session.
type SessionCloseRequest struct {
	SessionID string `json:"sessionId"`
}

// SessionCloseResponse acknowledges the close.
type SessionCloseResponse struct {
	Closed bool `json:"closed"`
}

// RenderResponse wraps the text schematic.
type RenderResponse struct {
	Schematic string `json:"schematic"`
}

// SessionCheckpointRequest snapshots a live session.
type SessionCheckpointRequest struct {
	SessionID string `json:"sessionId"`
}

// SessionCheckpointResponse carries the versioned binary snapshot
// (base64 in JSON). The document is self-contained: POSTing it back to
// /api/v1/session/restore — on this server or any other running a
// compatible format version — reproduces the machine exactly.
type SessionCheckpointResponse struct {
	SessionID  string `json:"sessionId"`
	Cycle      uint64 `json:"cycle"`
	Checkpoint []byte `json:"checkpoint"`
	// Durable reports whether this checkpoint is persisted in the
	// shared checkpoint store (write-through deployments): true means any
	// replica sharing the store can rehydrate the session from this
	// point, so a replica crash loses at most the work since this
	// response. False means the store write failed (or write-through is
	// off) and the caller's copy of Checkpoint is the only one — the
	// distributed tier's failover contract does NOT cover this
	// checkpoint. The chaos harness (docs/robustness.md) checks the
	// durability invariant against exactly this flag.
	Durable bool `json:"durable"`
}

// SessionRestoreRequest opens a new interactive session from a
// checkpoint. The response is a SessionNewResponse (fresh session ID,
// restored state).
type SessionRestoreRequest struct {
	Checkpoint []byte `json:"checkpoint"`
}

// ---------------------------------------------------------------------------
// Batch simulation (POST /api/v1/batch)
// ---------------------------------------------------------------------------

// BatchRequest carries N independent simulations to run in one round
// trip. The server fans them out across a bounded worker pool, which is
// how sweep workloads (issue widths, cache studies, load generation)
// exploit a multi-core host without N round trips.
type BatchRequest struct {
	Requests []SimulateRequest `json:"requests"`
	// BaseCheckpoint, when set, is the warm starting point for every
	// entry that carries no checkpoint of its own: the server forks each
	// simulation from this snapshot instead of replaying the warm-up
	// prefix from cycle zero.
	BaseCheckpoint []byte `json:"baseCheckpoint,omitempty"`
}

// BatchResult is the outcome of one batch entry. Exactly one of Response
// and Error is set; Index ties the result back to the request (results
// are returned in request order regardless of completion order).
type BatchResult struct {
	Index    int               `json:"index"`
	Response *SimulateResponse `json:"response,omitempty"`
	Error    *Error            `json:"error,omitempty"`
}

// BatchResponse carries all results plus fan-out accounting. Individual
// failures do not fail the batch: the HTTP status is 200 whenever the
// batch itself was well-formed.
type BatchResponse struct {
	Results   []BatchResult `json:"results"`
	Succeeded int           `json:"succeeded"`
	Failed    int           `json:"failed"`
	// Workers is the size of the worker pool that executed the batch.
	Workers int `json:"workers"`
	// WallNanos is the wall-clock time of the fan-out (all simulations,
	// not including request decode / response encode).
	WallNanos uint64 `json:"wallNanos"`
}

// ---------------------------------------------------------------------------
// Workload suite (POST /api/v1/suite)
// ---------------------------------------------------------------------------

// SuiteRequest runs the embedded workload corpus (internal/workload,
// docs/workloads.md) against one architecture and returns the typed
// per-workload metrics. The server fans the corpus out across the batch
// worker pool, so a full suite costs roughly one workload's wall time per
// core.
type SuiteRequest struct {
	// Preset selects a named architecture; Config overrides it with a
	// full architecture document (same precedence as SimulateRequest).
	Preset string           `json:"preset,omitempty"`
	Config *json.RawMessage `json:"config,omitempty"`
	// Filter selects a corpus subset: comma-separated terms, each
	// matching workload names by substring or tags exactly ("" = all).
	Filter string `json:"filter,omitempty"`
}

// SuiteResponse carries the metrics report plus fan-out accounting. The
// rows are in corpus order and — the core being deterministic — exactly
// reproducible: equal architecture and simulator version mean equal rows.
type SuiteResponse struct {
	workload.Report
	// Workers is the size of the pool that executed the suite.
	Workers int `json:"workers"`
	// WallNanos is the wall-clock time of the fan-out.
	WallNanos uint64 `json:"wallNanos"`
}

// ---------------------------------------------------------------------------
// Streaming sessions (POST /api/v1/session/stream)
// ---------------------------------------------------------------------------

// StreamRequest opens a one-shot streaming simulation: the server builds
// the machine, then pushes one NDJSON StreamEvent per step burst until
// the program halts or the cycle limit is reached. Interactive clients
// use it to watch a run without polling /session/step.
type StreamRequest struct {
	SimulateRequest
	// StepBurst is how many cycles to advance between events (default 32).
	StepBurst uint64 `json:"stepBurst,omitempty"`
	// MaxEvents caps the number of state events (default 10000); when
	// the cap is hit the remainder of the run completes without
	// intermediate events and only the final event follows.
	MaxEvents int `json:"maxEvents,omitempty"`
}

// StreamEvent is one NDJSON line of a streaming session. Events carry
// monotonically increasing Seq; the last event has Done == true and
// carries final Stats (or Error if the stream failed mid-run).
type StreamEvent struct {
	Seq        int         `json:"seq"`
	Cycle      uint64      `json:"cycle"`
	Halted     bool        `json:"halted"`
	HaltReason string      `json:"haltReason,omitempty"`
	Done       bool        `json:"done,omitempty"`
	State      *sim.State  `json:"state,omitempty"`
	Stats      *sim.Report `json:"stats,omitempty"`
	Error      *Error      `json:"error,omitempty"`
}

// ---------------------------------------------------------------------------
// Trace streaming (POST /api/v1/session/trace)
// ---------------------------------------------------------------------------

// TraceStreamRequest opens a one-shot streaming trace: the server builds
// the machine (from source or checkpoint), runs it, and pushes one NDJSON
// TraceStreamEvent per pipeline-stage event that passes the filters. The
// final line has Done == true and carries the run summary.
type TraceStreamRequest struct {
	SimulateRequest
	// StepBurst is how many cycles to simulate between flushes
	// (default 256). Events are batched per burst but every event is its
	// own NDJSON line.
	StepBurst uint64 `json:"stepBurst,omitempty"`
	// MaxEvents caps the streamed events (default 100000, ceiling
	// MaxTraceStreamEvents); past the cap the run completes untraced and
	// the final summary reports Truncated.
	MaxEvents int `json:"maxEvents,omitempty"`
}

// TraceStreamEvent is one NDJSON line of a trace stream: either one stage
// event, or (with Done set) the final summary.
type TraceStreamEvent struct {
	Seq   int             `json:"seq"`
	Event *sim.StageEvent `json:"event,omitempty"`
	// Summary fields, set on the final line.
	Done       bool   `json:"done,omitempty"`
	Cycle      uint64 `json:"cycle,omitempty"`
	Halted     bool   `json:"halted,omitempty"`
	HaltReason string `json:"haltReason,omitempty"`
	// Total counts the filter-matching events the run produced;
	// Truncated is set when MaxEvents stopped the stream early.
	Truncated bool   `json:"truncated,omitempty"`
	Total     uint64 `json:"total,omitempty"`
	Error     *Error `json:"error,omitempty"`
}

// ---------------------------------------------------------------------------
// Session debug log (GET /api/v1/session/{id}/log)
// ---------------------------------------------------------------------------

// SessionLogResponse pages through a session's debug log. The log is
// bounded (config.CPU maxLogEntries, default 4096, newest entries kept),
// so a pager that falls too far behind observes a gap — Dropped entries
// older than the returned window are gone.
type SessionLogResponse struct {
	SessionID string         `json:"sessionId"`
	Cycle     uint64         `json:"cycle"`
	Entries   []sim.LogEntry `json:"log"`
	// NextCycle is the since_cycle value that continues paging after
	// this window (one past the newest returned entry's cycle).
	NextCycle uint64 `json:"nextCycle"`
}

// ---------------------------------------------------------------------------
// Metrics
// ---------------------------------------------------------------------------

// CodecMetrics is the per-codec serialization accounting: how much of
// the server's time each codec implementation spent encoding and
// decoding, so a codec swap shows up as a measured delta.
type CodecMetrics struct {
	EncodeNanos uint64  `json:"encodeNanos"`
	DecodeNanos uint64  `json:"decodeNanos"`
	Share       float64 `json:"share"` // (enc+dec) / total handling time
}

// Metrics aggregates the server's self-instrumentation.
type Metrics struct {
	Requests       uint64  `json:"requests"`
	TotalNanos     uint64  `json:"totalHandlingNanos"`
	JSONNanos      uint64  `json:"jsonNanos"`
	SimNanos       uint64  `json:"simulationNanos"`
	JSONShare      float64 `json:"jsonShare"`
	ActiveSessions int     `json:"activeSessions"`
	// Codecs breaks JSONNanos down per codec implementation.
	Codecs map[string]CodecMetrics `json:"codecs,omitempty"`
	// BatchRequests counts /api/v1/batch calls; BatchSimulations counts
	// the simulations fanned out by them.
	BatchRequests    uint64 `json:"batchRequests"`
	BatchSimulations uint64 `json:"batchSimulations"`
	// SuiteRequests counts /api/v1/suite calls; SuiteWorkloads counts
	// the corpus workloads they executed.
	SuiteRequests  uint64 `json:"suiteRequests"`
	SuiteWorkloads uint64 `json:"suiteWorkloads"`
	// StreamEvents counts NDJSON events pushed by /api/v1/session/stream.
	StreamEvents uint64 `json:"streamEvents"`
	// Session lifecycle accounting: sessions_spilled counts sessions
	// serialized to disk on LRU/TTL eviction, sessions_rehydrated counts
	// spilled sessions transparently restored on their next touch, and
	// sessions_lost counts sessions evicted with spilling unavailable
	// (no spill directory, or the spill failed).
	SessionsSpilled    uint64 `json:"sessions_spilled"`
	SessionsRehydrated uint64 `json:"sessions_rehydrated"`
	SessionsLost       uint64 `json:"sessions_lost"`
	// Overload-protection accounting (docs/robustness.md). InFlight is
	// the current number of admitted simulation-bearing requests;
	// Shed counts requests rejected with over_capacity; DeadlineExceeded
	// counts requests that ran out of their per-request deadline.
	InFlight         int64  `json:"inFlight"`
	Shed             uint64 `json:"shed"`
	DeadlineExceeded uint64 `json:"deadlineExceeded"`
}
