// Benchmarks regenerating every table and figure of the paper's evaluation
// (§IV), plus the ablations from DESIGN.md §3. Run with:
//
//	go test -bench=. -benchmem .
//
// E1 (Table I):  BenchmarkTableI_*        — load-test latency/throughput
// E2 (§IV-A):    BenchmarkJSONShare       — JSON share of request handling
// E3 (§IV-A):    BenchmarkGzip*           — gzip throughput effect
// E4 (§IV):      BenchmarkRenderState     — schematic render cost
// A1:            BenchmarkWidthSweep*     — issue-width sweep
// A2:            BenchmarkCachePolicies*  — replacement policy ablation
// A3:            BenchmarkPredictors*     — predictor type ablation
// A4:            BenchmarkBackwardStep*   — backward-simulation cost
package riscvsim

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"testing"
	"time"

	"riscvsim/internal/api"
	"riscvsim/internal/cache"
	"riscvsim/internal/client"
	"riscvsim/internal/loadgen"
	"riscvsim/internal/predictor"
	"riscvsim/internal/render"
	"riscvsim/internal/server"
	"riscvsim/internal/workload"
	"riscvsim/sim"
)

// ---------------------------------------------------------------------------
// E1 — Table I: load-test latency and throughput
// ---------------------------------------------------------------------------

// benchTimeScale compresses the paper's 1 s think time / 4 s ramp-up so a
// full scenario fits in a bench iteration; latencies of individual
// requests are unaffected by the scale (only pacing shrinks).
const benchTimeScale = 0.004

func benchTableI(b *testing.B, users int, docker bool) {
	srv := server.New(server.DefaultOptions())
	var handler http.Handler = srv.Handler()
	if docker {
		handler = loadgen.DefaultDockerShim(handler)
	}
	ts := httptest.NewServer(handler)
	defer ts.Close()

	var last *loadgen.Result
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := loadgen.Run(ts.URL, loadgen.PaperScenario(users, benchTimeScale))
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.StopTimer()
	b.ReportMetric(float64(last.Median.Microseconds())/1000, "median-ms")
	b.ReportMetric(float64(last.P90.Microseconds())/1000, "p90-ms")
	b.ReportMetric(last.Throughput, "trans/s")
}

func BenchmarkTableI_Direct30(b *testing.B)  { benchTableI(b, 30, false) }
func BenchmarkTableI_Direct100(b *testing.B) { benchTableI(b, 100, false) }
func BenchmarkTableI_Docker30(b *testing.B)  { benchTableI(b, 30, true) }
func BenchmarkTableI_Docker100(b *testing.B) { benchTableI(b, 100, true) }

// TestTableIShape asserts the paper's qualitative findings: the server
// handles the small scenario without errors, the Docker deployment is
// slower, and heavy load degrades latency.
func TestTableIShape(t *testing.T) {
	if testing.Short() {
		t.Skip("load test")
	}
	if raceDetectorEnabled {
		t.Skip("timing-shape test; race instrumentation distorts latencies")
	}
	direct := httptest.NewServer(server.New(server.DefaultOptions()).Handler())
	defer direct.Close()
	docker := httptest.NewServer(loadgen.DefaultDockerShim(server.New(server.DefaultOptions()).Handler()))
	defer docker.Close()

	d30, err := loadgen.Run(direct.URL, loadgen.PaperScenario(30, benchTimeScale))
	if err != nil {
		t.Fatal(err)
	}
	d100, err := loadgen.Run(direct.URL, loadgen.PaperScenario(100, benchTimeScale))
	if err != nil {
		t.Fatal(err)
	}
	k30, err := loadgen.Run(docker.URL, loadgen.PaperScenario(30, benchTimeScale))
	if err != nil {
		t.Fatal(err)
	}
	k100, err := loadgen.Run(docker.URL, loadgen.PaperScenario(100, benchTimeScale))
	if err != nil {
		t.Fatal(err)
	}

	// Paper: "During the test, there were no application crashes or
	// query failures."
	for _, r := range []*loadgen.Result{d30, d100, k30, k100} {
		if r.Errors != 0 {
			t.Errorf("query failures: %+v", r)
		}
	}
	// Paper: "Docker has a noticeable impact on application performance."
	if k30.Median <= d30.Median {
		t.Errorf("Docker median (%v) should exceed Direct (%v) at 30 users", k30.Median, d30.Median)
	}
	if k100.P90 <= d100.P90 {
		t.Errorf("Docker p90 (%v) should exceed Direct (%v) at 100 users", k100.P90, d100.P90)
	}
	// Paper: "A larger number of users significantly affects latency."
	if d100.P90 <= d30.P90 {
		t.Errorf("p90 at 100 users (%v) should exceed p90 at 30 users (%v)", d100.P90, d30.P90)
	}
	t.Logf("Direct  30: %s", d30)
	t.Logf("Direct 100: %s", d100)
	t.Logf("Docker  30: %s", k30)
	t.Logf("Docker 100: %s", k100)
}

// ---------------------------------------------------------------------------
// E2 — JSON share of request handling (§IV-A: "about 60%")
// ---------------------------------------------------------------------------

// driveJSONWorkload sends interactive step requests with full state
// payloads — the web client's request pattern.
func driveJSONWorkload(tb testing.TB, ts *httptest.Server, n int) {
	body, _ := json.Marshal(&server.SimulateRequest{
		Code:         loadgen.ProgramB,
		Steps:        40,
		IncludeState: true,
		IncludeLog:   true,
	})
	for i := 0; i < n; i++ {
		resp, err := http.Post(ts.URL+"/simulate", "application/json", bytes.NewReader(body))
		if err != nil {
			tb.Fatal(err)
		}
		resp.Body.Close()
	}
}

func BenchmarkJSONShare(b *testing.B) {
	srv := server.New(server.DefaultOptions())
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	srv.ResetMetrics()
	b.ResetTimer()
	driveJSONWorkload(b, ts, b.N)
	b.StopTimer()
	m := srv.Metrics()
	b.ReportMetric(100*m.JSONShare, "json-share-%")
	b.ReportMetric(float64(m.SimNanos)/float64(m.TotalNanos)*100, "sim-share-%")
}

// TestJSONShareDominates checks the paper's profiling conclusion (§IV-A):
// working with the JSON format consumes more request-handling time than
// the simulation itself, so "further performance gains from optimizing
// the simulation are diminishing". The paper measures ~60% JSON share on
// its Java stack; Go's encoder is faster, so the absolute share is lower
// here, but the JSON-vs-simulation ordering — the actionable finding —
// reproduces (see EXPERIMENTS.md E2).
func TestJSONShareDominates(t *testing.T) {
	if raceDetectorEnabled {
		t.Skip("timing-shape test; race instrumentation distorts latencies")
	}
	srv := server.New(server.DefaultOptions())
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	srv.ResetMetrics()
	driveJSONWorkload(t, ts, 50)
	m := srv.Metrics()
	t.Logf("JSON share = %.1f%% (paper: ~60%%), sim share = %.1f%%",
		100*m.JSONShare, 100*float64(m.SimNanos)/float64(m.TotalNanos))
	if m.JSONNanos <= m.SimNanos {
		t.Errorf("JSON time (%d ns) should exceed simulation time (%d ns) on interactive requests",
			m.JSONNanos, m.SimNanos)
	}
}

// ---------------------------------------------------------------------------
// E2b — batch fan-out (/api/v1/batch): one round trip over a worker pool
// versus N sequential /simulate calls
// ---------------------------------------------------------------------------

// batchSweepSize matches the issue's acceptance scenario: a 32-way sweep.
const batchSweepSize = 32

// batchHeavyLoop is sized so each simulation does real work (~60k
// cycles): the fan-out win must come from simulating in parallel, not
// from shaving HTTP overhead.
const batchHeavyLoop = `
li t0, 0
li t1, 1
li t2, 20000
loop:
  add t0, t0, t1
  addi t1, t1, 1
  bne t1, t2, loop
`

func batchSweepRequests() []api.SimulateRequest {
	reqs := make([]api.SimulateRequest, batchSweepSize)
	for i := range reqs {
		reqs[i] = api.SimulateRequest{Code: batchHeavyLoop}
	}
	return reqs
}

func BenchmarkBatchSimulate(b *testing.B) {
	srv := server.New(server.DefaultOptions())
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	c := client.NewForURL(ts.URL, false)
	reqs := batchSweepRequests()

	b.Run("Sequential32", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for j := range reqs {
				if _, err := c.Simulate(&reqs[j]); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("Batch32", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			resp, err := c.SimulateBatch(reqs)
			if err != nil {
				b.Fatal(err)
			}
			if resp.Failed != 0 {
				b.Fatalf("%d batch entries failed", resp.Failed)
			}
		}
		b.ReportMetric(float64(runtime.GOMAXPROCS(0)), "workers")
	})
}

// BenchmarkBatchFromCheckpoint measures the checkpoint-fork path: a
// 32-way sweep forking from one warm checkpoint (50k cycles of shared
// prefix already executed) with a 2k-cycle tail per variant, against the
// same sweep replaying the warm-up from cycle zero. The fork path's
// per-entry cost is restore (proportional to state size) plus the tail,
// not the prefix — that delta is the whole point of checkpoints.
func BenchmarkBatchFromCheckpoint(b *testing.B) {
	// The heavy loop halts at ~40k cycles; fork at 35k so the shared
	// prefix dominates each variant's 2k-cycle tail.
	const warmCycles = 35_000
	const tailCycles = 2_000

	m, err := sim.NewFromAsm(sim.DefaultConfig(), batchHeavyLoop, "")
	if err != nil {
		b.Fatal(err)
	}
	m.Run(warmCycles)
	if m.Halted() {
		b.Fatal("warm-up ran to completion; no prefix to skip")
	}
	var base bytes.Buffer
	if err := m.Checkpoint(&base); err != nil {
		b.Fatal(err)
	}

	srv := server.New(server.DefaultOptions())
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	c := client.NewForURL(ts.URL, false)

	tails := make([]api.SimulateRequest, batchSweepSize)
	for i := range tails {
		tails[i] = api.SimulateRequest{Steps: tailCycles}
	}
	replays := make([]api.SimulateRequest, batchSweepSize)
	for i := range replays {
		replays[i] = api.SimulateRequest{Code: batchHeavyLoop, Steps: warmCycles + tailCycles}
	}

	b.Run("Forked32", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			resp, err := c.SimulateBatchFrom(base.Bytes(), tails)
			if err != nil {
				b.Fatal(err)
			}
			if resp.Failed != 0 {
				b.Fatalf("%d forks failed", resp.Failed)
			}
		}
		b.ReportMetric(float64(base.Len()), "ckpt_bytes")
	})
	b.Run("ReplayWarmup32", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			resp, err := c.SimulateBatch(replays)
			if err != nil {
				b.Fatal(err)
			}
			if resp.Failed != 0 {
				b.Fatalf("%d replays failed", resp.Failed)
			}
		}
	})
}

// BenchmarkCheckpointCodec measures the snapshot primitives themselves:
// encoding a warm machine and restoring it.
func BenchmarkCheckpointCodec(b *testing.B) {
	m, err := sim.NewFromAsm(sim.DefaultConfig(), batchHeavyLoop, "")
	if err != nil {
		b.Fatal(err)
	}
	m.Run(35_000)
	var buf bytes.Buffer
	if err := m.Checkpoint(&buf); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()

	b.Run("Encode", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			var out bytes.Buffer
			if err := m.Checkpoint(&out); err != nil {
				b.Fatal(err)
			}
		}
		b.SetBytes(int64(len(data)))
	})
	b.Run("Restore", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := sim.Restore(bytes.NewReader(data)); err != nil {
				b.Fatal(err)
			}
		}
		b.SetBytes(int64(len(data)))
	})
}

// TestBatchFasterThanSequential is the acceptance check: on a multi-core
// host, one POST /api/v1/batch with 32 simulations completes in less
// wall time than 32 sequential /simulate calls.
func TestBatchFasterThanSequential(t *testing.T) {
	if testing.Short() {
		t.Skip("load test")
	}
	if raceDetectorEnabled {
		t.Skip("timing-shape test; race instrumentation distorts latencies")
	}
	if runtime.GOMAXPROCS(0) < 2 {
		t.Skip("needs a multi-core host")
	}
	srv := server.New(server.DefaultOptions())
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	reqs := batchSweepRequests()

	// Warm up (JIT-free, but first requests pay connection setup).
	if _, err := loadgen.BatchSweep(ts.URL, reqs[:2], false); err != nil {
		t.Fatal(err)
	}
	// A single wall-clock sample can lose to scheduler noise on shared
	// CI runners; the claim holds if any of a few attempts shows it.
	const attempts = 3
	for attempt := 1; ; attempt++ {
		seq, err := loadgen.SequentialSweep(ts.URL, reqs, false)
		if err != nil {
			t.Fatal(err)
		}
		bat, err := loadgen.BatchSweep(ts.URL, reqs, false)
		if err != nil {
			t.Fatal(err)
		}
		if seq.Failed != 0 || bat.Failed != 0 {
			t.Fatalf("failures: sequential %d, batch %d", seq.Failed, bat.Failed)
		}
		t.Logf("attempt %d: 32-way sweep sequential %v, batch %v (%d workers, server fan-out %v, %.2fx)",
			attempt, seq.Wall, bat.Wall, bat.Workers, bat.ServerWall, float64(seq.Wall)/float64(bat.Wall))
		if bat.Wall < seq.Wall {
			return
		}
		if attempt == attempts {
			t.Errorf("batch (%v) should beat sequential (%v) on %d cores",
				bat.Wall, seq.Wall, runtime.GOMAXPROCS(0))
			return
		}
	}
}

// ---------------------------------------------------------------------------
// E2c — per-codec JSON share: the pooled codec's reduction is visible in
// /api/v1/metrics
// ---------------------------------------------------------------------------

// driveCodecWorkload is driveJSONWorkload pinned to one codec.
func driveCodecWorkload(tb testing.TB, ts *httptest.Server, codec string, n int) {
	body, _ := json.Marshal(&api.SimulateRequest{
		Code:         loadgen.ProgramB,
		Steps:        40,
		IncludeState: true,
		IncludeLog:   true,
	})
	mt := api.MediaTypeJSON + "; " + api.CodecParam + "=" + codec
	for i := 0; i < n; i++ {
		req, _ := http.NewRequest(http.MethodPost, ts.URL+"/api/v1/simulate", bytes.NewReader(body))
		req.Header.Set("Content-Type", mt)
		req.Header.Set("Accept", mt)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			tb.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			tb.Fatalf("codec %s workload request failed: %d", codec, resp.StatusCode)
		}
	}
}

func BenchmarkCodecShare(b *testing.B) {
	for _, codec := range []string{"json", "pooled"} {
		b.Run(codec, func(b *testing.B) {
			srv := server.New(server.DefaultOptions())
			ts := httptest.NewServer(srv.Handler())
			defer ts.Close()
			srv.ResetMetrics()
			b.ResetTimer()
			driveCodecWorkload(b, ts, codec, b.N)
			b.StopTimer()
			m := srv.Metrics()
			cm := m.Codecs[codec]
			b.ReportMetric(100*cm.Share, "codec-share-%")
			b.ReportMetric(100*m.JSONShare, "json-share-%")
		})
	}
}

// TestPerCodecShareMeasured: /api/v1/metrics must attribute JSON time to
// the codec that spent it, so a codec swap is a measured change rather
// than a guess.
func TestPerCodecShareMeasured(t *testing.T) {
	srv := server.New(server.DefaultOptions())
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	srv.ResetMetrics()
	driveCodecWorkload(t, ts, "json", 20)
	driveCodecWorkload(t, ts, "pooled", 20)
	m := srv.Metrics()
	j, p := m.Codecs["json"], m.Codecs["pooled"]
	t.Logf("codec shares over the same workload: json %.1f%%, pooled %.1f%% (aggregate %.1f%%)",
		100*j.Share, 100*p.Share, 100*m.JSONShare)
	if j.EncodeNanos == 0 || j.DecodeNanos == 0 || p.EncodeNanos == 0 || p.DecodeNanos == 0 {
		t.Errorf("per-codec accounting incomplete: json=%+v pooled=%+v", j, p)
	}
	if j.Share <= 0 || p.Share <= 0 {
		t.Errorf("shares not computed: json=%v pooled=%v", j.Share, p.Share)
	}
}

// ---------------------------------------------------------------------------
// E3 — gzip effect (§IV-A: "+40% throughput")
// ---------------------------------------------------------------------------

func benchGzip(b *testing.B, gz bool) {
	srv := server.New(server.Options{DisableGzip: !gz})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	sc := loadgen.Scenario{
		Users: 16, StepsPerUser: 6, StepSize: 2,
		RampUp: 4 * time.Millisecond, ThinkTime: time.Millisecond,
		Gzip: gz, Programs: []string{loadgen.ProgramA, loadgen.ProgramB},
	}
	var last *loadgen.Result
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := loadgen.Run(ts.URL, sc)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.StopTimer()
	b.ReportMetric(last.Throughput, "trans/s")
	b.ReportMetric(float64(last.Median.Microseconds())/1000, "median-ms")
}

func BenchmarkGzipOn(b *testing.B)  { benchGzip(b, true) }
func BenchmarkGzipOff(b *testing.B) { benchGzip(b, false) }

// TestGzipCompressionRatio verifies the mechanism behind the paper's
// +40% throughput: state responses compress dramatically, so gzip trades
// cheap CPU for a large wire-size reduction (the win is proportionally
// larger over a real network than on loopback).
func TestGzipCompressionRatio(t *testing.T) {
	srv := server.New(server.DefaultOptions())
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	body, _ := json.Marshal(&server.SimulateRequest{
		Code: loadgen.ProgramB, Steps: 40, IncludeState: true,
	})

	measure := func(acceptGzip bool) int {
		req, _ := http.NewRequest(http.MethodPost, ts.URL+"/simulate", bytes.NewReader(body))
		if acceptGzip {
			req.Header.Set("Accept-Encoding", "gzip")
		}
		tr := &http.Transport{DisableCompression: true}
		resp, err := tr.RoundTrip(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		return buf.Len()
	}

	plain := measure(false)
	compressed := measure(true)
	ratio := float64(plain) / float64(compressed)
	t.Logf("state response: %d B plain, %d B gzip (%.1fx)", plain, compressed, ratio)
	if ratio < 2 {
		t.Errorf("gzip ratio %.2fx, expected at least 2x on JSON state", ratio)
	}
}

// ---------------------------------------------------------------------------
// E4 — render cost (§IV: "rendering typically takes around 80 ms")
// ---------------------------------------------------------------------------

func BenchmarkRenderState(b *testing.B) {
	m, err := sim.NewFromAsm(sim.DefaultConfig(), loadgen.ProgramB, "")
	if err != nil {
		b.Fatal(err)
	}
	m.StepN(60)
	st := m.State(false)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		render.Schematic(st)
	}
}

// BenchmarkStateSnapshot measures building the state document itself (the
// server-side half of a GUI refresh).
func BenchmarkStateSnapshot(b *testing.B) {
	m, err := sim.NewFromAsm(sim.DefaultConfig(), loadgen.ProgramB, "")
	if err != nil {
		b.Fatal(err)
	}
	m.StepN(60)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.State(false)
	}
}

// ---------------------------------------------------------------------------
// Core speed: simulated cycles per second (the CLI's batch-mode currency)
// ---------------------------------------------------------------------------

// simKernel is the shared workload of the core-speed and trace-overhead
// benchmarks: a tight dependent loop with one branch per iteration.
const simKernel = `
li t0, 0
li t1, 1
li t2, 10000
loop:
  add t0, t0, t1
  addi t1, t1, 1
  bne t1, t2, loop
`

// benchSimKernel runs the kernel to completion per iteration, optionally
// attaching a tracer first.
func benchSimKernel(b *testing.B, tracer sim.Tracer, attach bool) {
	b.ReportAllocs()
	var cycles uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, err := sim.NewFromAsm(sim.DefaultConfig(), simKernel, "")
		if err != nil {
			b.Fatal(err)
		}
		if attach {
			m.SetTracer(tracer)
		}
		cycles = m.Run(10_000_000)
	}
	b.StopTimer()
	b.ReportMetric(float64(cycles)*float64(b.N)/b.Elapsed().Seconds(), "cycles/s")
}

// BenchmarkSim is the trace-gate baseline: the hot loop with no tracer
// ever attached.
func BenchmarkSim(b *testing.B) { benchSimKernel(b, nil, false) }

// BenchmarkSimTraceOff pins the tentpole's zero-overhead contract: the
// instrumented hot loop with tracing explicitly off (a nil tracer) must
// stay within 5% of BenchmarkSim — CI's trace-overhead-gate job fails
// otherwise.
func BenchmarkSimTraceOff(b *testing.B) { benchSimKernel(b, nil, true) }

// BenchmarkSimTraceRing measures the cost of actually collecting: every
// stage event of the run lands in a bounded ring.
func BenchmarkSimTraceRing(b *testing.B) {
	benchSimKernel(b, sim.NewTraceRing(4096, sim.NoTraceFilter()), true)
}

// BenchmarkSimTraceCommitOnly measures a filtered collector (commit
// events only), the cheap configuration analysis tooling uses.
func BenchmarkSimTraceCommitOnly(b *testing.B) {
	f, err := sim.ParseTraceFilter("commit", "")
	if err != nil {
		b.Fatal(err)
	}
	benchSimKernel(b, sim.NewTraceRing(4096, f), true)
}

// BenchmarkSimulationRun is the historical name for the untraced core
// speed benchmark; kept so longitudinal bench logs stay comparable.
func BenchmarkSimulationRun(b *testing.B) { benchSimKernel(b, nil, false) }

// BenchmarkStep is the single-cycle micro-benchmark behind the
// allocation gate: steady-state Step() must stay at 0 allocs/op (run
// with -benchmem; TestStepAllocFree in internal/core is the hard CI
// check). The machine is warmed first so every scratch buffer and the
// instruction free list have reached their steady-state footprint.
func BenchmarkStep(b *testing.B) {
	m, err := sim.NewFromAsm(sim.DefaultConfig(), `
  li t0, 0
  li t1, 1
  li t2, 1000000000
loop:
  add t0, t0, t1
  addi t1, t1, 1
  bne t1, t2, loop
`, "")
	if err != nil {
		b.Fatal(err)
	}
	m.StepN(10_000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Step()
	}
	if m.Halted() {
		b.Fatal("kernel finished mid-benchmark; grow the loop bound")
	}
}

// ---------------------------------------------------------------------------
// Workload suite: the corpus as a performance trajectory
// ---------------------------------------------------------------------------

// BenchmarkSuite runs the full embedded corpus sequentially on the
// default core — the end-to-end "simulator speed on realistic code"
// number the perf-diff CI job tracks across PRs (complementing
// BenchmarkSim's synthetic tight loop).
func BenchmarkSuite(b *testing.B) {
	b.ReportAllocs()
	var cycles uint64
	for i := 0; i < b.N; i++ {
		rep, err := workload.Run(workload.Options{Workers: 1})
		if err != nil {
			b.Fatal(err)
		}
		cycles = 0
		for _, m := range rep.Workloads {
			cycles += m.Cycles
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(cycles)*float64(b.N)/b.Elapsed().Seconds(), "cycles/s")
}

// BenchmarkFastForward runs the full corpus in the fast-forward
// functional mode (fused basic-block plans, architectural state only) —
// the warm-up-leg throughput number the perf-diff CI job tracks alongside
// the detailed-mode suite. Machines are assembled once outside the timer;
// each iteration re-runs the programs from a fresh dynamic state, so the
// metric is pure fast-forward execution speed in simulated cycles/s.
func BenchmarkFastForward(b *testing.B) {
	var machines []*sim.Machine
	var maxCycles []uint64
	for _, w := range workload.Corpus() {
		m, err := workload.NewMachine(nil, w)
		if err != nil {
			b.Fatal(err)
		}
		m.SetEngineMode(sim.EngineFastForward)
		machines = append(machines, m)
		maxCycles = append(maxCycles, w.MaxCycles)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var cycles uint64
	for i := 0; i < b.N; i++ {
		cycles = 0
		for j, m := range machines {
			ns, err := m.Sim().Fresh()
			if err != nil {
				b.Fatal(err)
			}
			ns.Run(maxCycles[j])
			if !ns.Halted() {
				b.Fatalf("workload %d did not halt", j)
			}
			cycles += ns.Cycle()
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(cycles)*float64(b.N)/b.Elapsed().Seconds(), "cycles/s")
}

// ---------------------------------------------------------------------------
// Time-parallel simulation: one long run split across K cores
// ---------------------------------------------------------------------------

// BenchmarkParallel is the time-parallel acceptance benchmark: one
// ≥50M-cycle detailed run (workload.LongStreamBench), serial versus
// RunParallel at K ∈ {2, 4, 8}. Each sub-benchmark reports simulated
// cycles per wall-clock second; the K-way numbers divided by Serial's
// are the speedup the perf-diff CI job publishes into BENCH_<sha>.json
// (target: ≥3x at K=8 on a multi-core runner — on fewer cores the
// speedup degrades toward the scout+warm-up overhead floor, which is
// itself the number worth tracking).
func BenchmarkParallel(b *testing.B) {
	w := workload.LongStreamBench()

	b.Run("Serial", func(b *testing.B) {
		var cycles uint64
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			m, err := workload.NewMachine(nil, w)
			if err != nil {
				b.Fatal(err)
			}
			cycles = m.Run(w.MaxCycles)
			if !m.Halted() {
				b.Fatal("serial run did not halt")
			}
		}
		b.StopTimer()
		b.ReportMetric(float64(cycles)*float64(b.N)/b.Elapsed().Seconds(), "cycles/s")
	})

	for _, k := range []int{2, 4, 8} {
		k := k
		b.Run(fmt.Sprintf("K%d", k), func(b *testing.B) {
			var res *sim.ParallelResult
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m, err := workload.NewMachine(nil, w)
				if err != nil {
					b.Fatal(err)
				}
				res, err = m.RunParallel(k, sim.ParallelOptions{MaxCycles: w.MaxCycles})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			// Stitched cycles are the serial-equivalent work performed;
			// wall time includes the scout pass, warm-ups and any healing.
			b.ReportMetric(float64(res.Report.Cycles)*float64(b.N)/b.Elapsed().Seconds(), "cycles/s")
			b.ReportMetric(float64(res.Workers), "workers")
			b.ReportMetric(float64(res.Healed), "healed")
		})
	}
}

// BenchmarkSuiteParallel is the same corpus on a full worker pool — the
// wall-time number /api/v1/suite users experience on a multi-core host.
func BenchmarkSuiteParallel(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := workload.Run(workload.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSuiteWorkload breaks the corpus down per workload, so a
// perf-diff delta names the behavior (pointer chase, FP chain, conflict
// misses...) that got faster or slower rather than one blended number.
func BenchmarkSuiteWorkload(b *testing.B) {
	for _, w := range workload.Corpus() {
		w := w
		b.Run(w.Name, func(b *testing.B) {
			var cycles uint64
			for i := 0; i < b.N; i++ {
				m, err := workload.RunOne(nil, w)
				if err != nil {
					b.Fatal(err)
				}
				cycles = m.Cycles
			}
			b.StopTimer()
			b.ReportMetric(float64(cycles)*float64(b.N)/b.Elapsed().Seconds(), "cycles/s")
		})
	}
}

// ---------------------------------------------------------------------------
// A1 — issue-width sweep (dot product)
// ---------------------------------------------------------------------------

const dotProduct = `
main:
  la t0, a
  la t1, b
  li t2, 0
  li t3, 64
  fmv.w.x ft0, x0
loop:
  slli t4, t2, 2
  add t5, t0, t4
  flw ft1, 0(t5)
  add t6, t1, t4
  flw ft2, 0(t6)
  fmadd.s ft0, ft1, ft2, ft0
  addi t2, t2, 1
  blt t2, t3, loop
  fcvt.w.s a0, ft0
  ret
.data
.align 4
a: .zero 256
b: .zero 256
`

func benchWidth(b *testing.B, width int) {
	cfg, err := sim.WidthConfig(width)
	if err != nil {
		b.Fatal(err)
	}
	var r *sim.Report
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, err := sim.NewFromAsm(cfg, dotProduct, "main")
		if err != nil {
			b.Fatal(err)
		}
		m.Run(1_000_000)
		r = m.Report()
	}
	b.StopTimer()
	b.ReportMetric(float64(r.Cycles), "sim-cycles")
	b.ReportMetric(r.IPC, "IPC")
}

func BenchmarkWidthSweep1(b *testing.B) { benchWidth(b, 1) }
func BenchmarkWidthSweep2(b *testing.B) { benchWidth(b, 2) }
func BenchmarkWidthSweep4(b *testing.B) { benchWidth(b, 4) }
func BenchmarkWidthSweep8(b *testing.B) { benchWidth(b, 8) }

// TestWidthSweepShape: wider processors must not be slower on an
// ILP-bearing kernel, and 4-wide must beat scalar outright.
func TestWidthSweepShape(t *testing.T) {
	cycles := map[int]uint64{}
	for _, w := range []int{1, 2, 4} {
		cfg, err := sim.WidthConfig(w)
		if err != nil {
			t.Fatal(err)
		}
		m, err := sim.NewFromAsm(cfg, dotProduct, "main")
		if err != nil {
			t.Fatal(err)
		}
		m.Run(1_000_000)
		cycles[w] = m.Cycle()
	}
	t.Logf("dot product cycles: 1-wide=%d 2-wide=%d 4-wide=%d", cycles[1], cycles[2], cycles[4])
	if cycles[4] >= cycles[1] {
		t.Errorf("4-wide (%d) should beat scalar (%d)", cycles[4], cycles[1])
	}
	if cycles[2] > cycles[1] {
		t.Errorf("2-wide (%d) should not lose to scalar (%d)", cycles[2], cycles[1])
	}
}

// ---------------------------------------------------------------------------
// A2 — cache policy/associativity ablation
// ---------------------------------------------------------------------------

const stridedWalk = `
main:
  li s0, 0
  li s1, 4
  li a0, 0
pass:
  la t0, arr
  li t1, 0
  li t2, 8
touch:
  lw t3, 0(t0)
  add a0, a0, t3
  addi t0, t0, 1024
  addi t1, t1, 1
  blt t1, t2, touch
  addi s0, s0, 1
  blt s0, s1, pass
  ret
.data
.align 6
arr: .zero 8192
`

func benchCache(b *testing.B, assoc int, pol cache.ReplacementPolicy) {
	cfg := sim.DefaultConfig()
	cfg.Cache.Lines = 16
	cfg.Cache.Associativity = assoc
	cfg.Cache.Replacement = pol
	var r *sim.Report
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, err := sim.NewFromAsm(cfg, stridedWalk, "main")
		if err != nil {
			b.Fatal(err)
		}
		m.Run(1_000_000)
		r = m.Report()
	}
	b.StopTimer()
	b.ReportMetric(100*r.CacheHitRate, "hit-%")
	b.ReportMetric(float64(r.Cycles), "sim-cycles")
}

func BenchmarkCachePoliciesDM(b *testing.B)       { benchCache(b, 1, cache.LRU) }
func BenchmarkCachePolicies4WayLRU(b *testing.B)  { benchCache(b, 4, cache.LRU) }
func BenchmarkCachePolicies8WayLRU(b *testing.B)  { benchCache(b, 8, cache.LRU) }
func BenchmarkCachePolicies4WayFIFO(b *testing.B) { benchCache(b, 4, cache.FIFO) }
func BenchmarkCachePolicies4WayRand(b *testing.B) { benchCache(b, 4, cache.Random) }

// ---------------------------------------------------------------------------
// A3 — predictor ablation
// ---------------------------------------------------------------------------

// branchy alternates a data-dependent branch T,N,T,N — trivial for a
// history predictor, pathological for one- and two-bit counters.
const branchy = `
main:
  li t0, 0
  li t1, 0
  li t2, 400
loop:
  andi t3, t1, 1
  beqz t3, even
  addi t0, t0, 2
  j next
even:
  addi t0, t0, 1
next:
  addi t1, t1, 1
  bne t1, t2, loop
  mv a0, t0
  ret
`

func benchPredictor(b *testing.B, kind predictor.Type, defState, histBits int) {
	cfg := sim.DefaultConfig()
	cfg.Predictor.Kind = kind
	cfg.Predictor.DefaultState = defState
	cfg.Predictor.HistoryBits = histBits
	var r *sim.Report
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, err := sim.NewFromAsm(cfg, branchy, "main")
		if err != nil {
			b.Fatal(err)
		}
		m.Run(1_000_000)
		r = m.Report()
	}
	b.StopTimer()
	b.ReportMetric(100*r.PredAccuracy, "accuracy-%")
	b.ReportMetric(float64(r.Cycles), "sim-cycles")
	b.ReportMetric(float64(r.ROBFlushes), "flushes")
}

func BenchmarkPredictorsZeroBit(b *testing.B) { benchPredictor(b, predictor.ZeroBit, 1, 0) }
func BenchmarkPredictorsOneBit(b *testing.B)  { benchPredictor(b, predictor.OneBit, 0, 0) }
func BenchmarkPredictorsTwoBit(b *testing.B)  { benchPredictor(b, predictor.TwoBit, 2, 0) }
func BenchmarkPredictorsGshare(b *testing.B)  { benchPredictor(b, predictor.TwoBit, 2, 8) }

// TestPredictorShape compares predictor types on a biased nested loop
// (inner loop taken 7 of 8 times): a two-bit counter mispredicts once per
// inner-loop exit where a one-bit counter mispredicts twice, and both beat
// a static not-taken predictor. (A pure alternating pattern does not
// discriminate gshare here because the predictor trains at commit, so
// fetch sees stale history under deep speculation — same as the paper's
// design.)
func TestPredictorShape(t *testing.T) {
	const nested = `
main:
  li s0, 0            # outer
  li s1, 50
outer:
  li t1, 0            # inner
  li t2, 8
inner:
  addi t1, t1, 1
  blt t1, t2, inner
  addi s0, s0, 1
  blt s0, s1, outer
  ret
`
	run := func(kind predictor.Type, defState int) float64 {
		cfg := sim.DefaultConfig()
		cfg.Predictor.Kind = kind
		cfg.Predictor.DefaultState = defState
		cfg.Predictor.HistoryBits = 0
		m, err := sim.NewFromAsm(cfg, nested, "main")
		if err != nil {
			t.Fatal(err)
		}
		m.Run(1_000_000)
		return m.Report().PredAccuracy
	}
	zero := run(predictor.ZeroBit, 0) // always not-taken
	one := run(predictor.OneBit, 0)
	two := run(predictor.TwoBit, 2)
	t.Logf("accuracy: zero-bit=%.3f one-bit=%.3f two-bit=%.3f", zero, one, two)
	if two <= one {
		t.Errorf("two-bit (%.3f) should beat one-bit (%.3f) on a biased loop", two, one)
	}
	if one <= zero {
		t.Errorf("one-bit (%.3f) should beat static not-taken (%.3f)", one, zero)
	}
	if two < 0.8 {
		t.Errorf("two-bit accuracy %.3f, expected > 0.8 on loop branches", two)
	}
}

// ---------------------------------------------------------------------------
// A4 — backward-simulation cost (re-run of t−1 cycles, §III-B)
// ---------------------------------------------------------------------------

func benchBackward(b *testing.B, at uint64) {
	m, err := sim.NewFromAsm(sim.DefaultConfig(), loadgen.ProgramA, "")
	if err != nil {
		b.Fatal(err)
	}
	m.StepN(at)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// StepBack replaces the machine; re-advance to keep t constant.
		if err := m.StepBack(); err != nil {
			b.Fatal(err)
		}
		m.StepN(1)
	}
}

func BenchmarkBackwardStepAt100(b *testing.B) { benchBackward(b, 100) }
func BenchmarkBackwardStepAt500(b *testing.B) { benchBackward(b, 500) }

// backwardDeepLoop runs long enough that a backward step at t=20000 is a
// genuinely deep rewind (the kernel halts around 100k cycles).
const backwardDeepLoop = `
li t0, 0
li t1, 1
li t2, 40000
loop:
  add t0, t0, t1
  addi t1, t1, 1
  bne t1, t2, loop
`

// benchBackwardDeep measures one backward step at depth `at`, with or
// without interval snapshots. The snapshot variant restores from the
// nearest snapshot and replays the remainder — O(interval) — while the
// replay variant re-runs all `at` cycles from zero (paper §III-B).
func benchBackwardDeep(b *testing.B, at uint64, snapshots bool) {
	m, err := sim.NewFromAsm(sim.DefaultConfig(), backwardDeepLoop, "")
	if err != nil {
		b.Fatal(err)
	}
	if snapshots {
		m.EnableSnapshots(0)
	}
	m.StepN(at)
	if m.Halted() {
		b.Fatal("kernel halted during warm-up")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := m.StepBack(); err != nil {
			b.Fatal(err)
		}
		m.StepN(1)
	}
}

// BenchmarkBackwardStepDeepReplay vs ...DeepSnapshot is the interval-
// snapshot acceptance pair: at a 20k-cycle depth the snapshot path must
// be >=10x faster than the from-zero replay.
func BenchmarkBackwardStepDeepReplay(b *testing.B)   { benchBackwardDeep(b, 20_000, false) }
func BenchmarkBackwardStepDeepSnapshot(b *testing.B) { benchBackwardDeep(b, 20_000, true) }

// TestBackwardCostGrowsLinearly documents the paper's design trade-off:
// backward simulation re-runs from cycle zero, so stepping back at a later
// cycle costs more. A long-running program makes the replay cost dominate
// the constant machine-construction cost; the minimum of several runs
// suppresses scheduler noise.
func TestBackwardCostGrowsLinearly(t *testing.T) {
	const longLoop = `
li t0, 0
li t1, 1
li t2, 20000
loop:
  add t0, t0, t1
  addi t1, t1, 1
  bne t1, t2, loop
`
	cost := func(at uint64) time.Duration {
		best := time.Duration(0)
		for trial := 0; trial < 5; trial++ {
			m, err := sim.NewFromAsm(sim.DefaultConfig(), longLoop, "")
			if err != nil {
				t.Fatal(err)
			}
			m.StepN(at)
			start := time.Now()
			for i := 0; i < 5; i++ {
				if err := m.StepBack(); err != nil {
					t.Fatal(err)
				}
				m.StepN(1)
			}
			d := time.Since(start)
			if best == 0 || d < best {
				best = d
			}
		}
		return best
	}
	cost(100) // warmup
	early, late := cost(100), cost(20000)
	t.Logf("5 back-steps at t=100: %v; at t=20000: %v", early, late)
	if late < early {
		t.Errorf("backward stepping at t=20000 (%v) should cost more than at t=100 (%v)", late, early)
	}
}

// ---------------------------------------------------------------------------
// A5 — pipelined functional units (the paper's future-work feature, §V)
// ---------------------------------------------------------------------------

// fpILPKernel has four independent FP accumulator chains, so a pipelined
// FP unit (1 issue/cycle) beats a non-pipelined one (1 op per latency);
// the plain dotProduct kernel would not benefit — its single accumulator
// chain is latency-bound, which is itself a teachable result.
const fpILPKernel = `
main:
  la t0, a
  li t2, 0
  li t3, 64
  fmv.w.x ft0, x0
  fmv.w.x ft4, x0
  fmv.w.x ft5, x0
  fmv.w.x ft6, x0
loop:
  slli t4, t2, 2
  add t5, t0, t4
  flw ft1, 0(t5)
  fadd.s ft0, ft0, ft1
  flw ft2, 4(t5)
  fadd.s ft4, ft4, ft2
  flw ft3, 8(t5)
  fadd.s ft5, ft5, ft3
  flw ft7, 12(t5)
  fadd.s ft6, ft6, ft7
  addi t2, t2, 4
  blt t2, t3, loop
  fadd.s ft0, ft0, ft4
  fadd.s ft5, ft5, ft6
  fadd.s ft0, ft0, ft5
  fcvt.w.s a0, ft0
  ret
.data
.align 4
a: .zero 256
`

func benchPipelined(b *testing.B, pipelined bool) {
	cfg := sim.DefaultConfig()
	if pipelined {
		for i := range cfg.Units {
			cfg.Units[i].Pipelined = true
		}
	}
	var r *sim.Report
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, err := sim.NewFromAsm(cfg, fpILPKernel, "main")
		if err != nil {
			b.Fatal(err)
		}
		m.Run(1_000_000)
		r = m.Report()
	}
	b.StopTimer()
	b.ReportMetric(float64(r.Cycles), "sim-cycles")
	b.ReportMetric(r.IPC, "IPC")
}

func BenchmarkFUsNonPipelined(b *testing.B) { benchPipelined(b, false) }
func BenchmarkFUsPipelined(b *testing.B)    { benchPipelined(b, true) }

// TestPipelinedFUsShape: lifting the paper's no-internal-pipelining
// limitation must speed up an FP-heavy kernel and leave results unchanged.
func TestPipelinedFUsShape(t *testing.T) {
	run := func(pipelined bool) (uint64, int32) {
		cfg := sim.DefaultConfig()
		if pipelined {
			for i := range cfg.Units {
				cfg.Units[i].Pipelined = true
			}
		}
		m, err := sim.NewFromAsm(cfg, fpILPKernel, "main")
		if err != nil {
			t.Fatal(err)
		}
		m.Run(1_000_000)
		v, _ := m.IntReg("a0")
		return m.Cycle(), v
	}
	plainCycles, plainResult := run(false)
	pipedCycles, pipedResult := run(true)
	t.Logf("4-chain FP kernel: non-pipelined %d cycles, pipelined %d cycles", plainCycles, pipedCycles)
	if pipedResult != plainResult {
		t.Errorf("pipelining changed the result: %d != %d", pipedResult, plainResult)
	}
	if pipedCycles >= plainCycles {
		t.Errorf("pipelined FUs (%d cycles) should beat non-pipelined (%d) on an FP kernel",
			pipedCycles, plainCycles)
	}
}
