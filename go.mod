module riscvsim

go 1.24
