//go:build !race

package riscvsim

// raceDetectorEnabled mirrors race_enabled_test.go for regular builds.
const raceDetectorEnabled = false
