package sim

import (
	"bufio"
	"fmt"
	"hash/fnv"
	"io"

	"riscvsim/internal/asm"
	"riscvsim/internal/ckpt"
	"riscvsim/internal/config"
	"riscvsim/internal/core"
	"riscvsim/internal/isa"
	"riscvsim/internal/memory"
)

// Checkpoint/restore: the versioned binary snapshot of a complete machine.
//
// A checkpoint is self-contained: the header carries the architecture
// JSON (guarded by a hash), the assembly source and the entry point, and
// the body carries every piece of dynamic state — architectural and
// speculative registers, ROB, issue windows, LSU queues, functional
// units, fetch/branch state, cache contents, memory (sparse pages),
// cycle counters and statistics. Restore re-assembles the program (cheap,
// proportional to source size, not to cycles executed) and overlays the
// dynamic state, yielding a machine that is cycle-for-cycle deterministic
// with the original. docs/checkpoint.md documents the binary layout.

// header size bounds for the decoder.
const (
	maxConfigJSON = 1 << 20 // 1 MiB architecture document
	maxSource     = 8 << 20 // 8 MiB assembly source
)

// Checkpoint serializes the machine's complete state to w in the
// versioned binary snapshot format.
func (m *Machine) Checkpoint(w io.Writer) error {
	if m.cfgJSON == nil {
		data, err := m.cfg.Export()
		if err != nil {
			return fmt.Errorf("sim: exporting configuration: %w", err)
		}
		m.cfgJSON = data
	}
	cfgJSON := m.cfgJSON
	bw := bufio.NewWriter(w)
	cw := ckpt.NewWriter(bw)
	cw.Raw([]byte(ckpt.Magic))
	cw.U64(ckpt.Version)
	cw.Fixed64(ckpt.ConfigHash(cfgJSON))
	cw.Bytes(cfgJSON)
	cw.String(m.src)
	cw.Int(m.entry)
	m.sim.EncodeState(cw)
	cw.U64(uint64(ckpt.FooterMagic))
	if err := cw.Err(); err != nil {
		return err
	}
	return bw.Flush()
}

// Restore rebuilds a machine from a checkpoint stream. The restored
// machine produces the same State and Report as the original at every
// future step. Decoding failures return errors wrapping the ckpt sentinel
// errors (ErrBadMagic, ErrVersion, ErrConfigHash, ErrTruncated,
// ErrCorrupt), which the server maps onto stable API error codes.
func Restore(r io.Reader) (*Machine, error) {
	cr := ckpt.NewReader(r)
	var magic [4]byte
	cr.Raw(magic[:])
	if err := cr.Err(); err != nil {
		return nil, err
	}
	if string(magic[:]) != ckpt.Magic {
		return nil, ckpt.ErrBadMagic
	}
	version := cr.U64()
	if err := cr.Err(); err != nil {
		return nil, err
	}
	if version == 0 || version > ckpt.Version {
		return nil, fmt.Errorf("%w: stream has version %d, this build supports <= %d",
			ckpt.ErrVersion, version, ckpt.Version)
	}
	wantHash := cr.Fixed64()
	cfgJSON := cr.Bytes(maxConfigJSON)
	if err := cr.Err(); err != nil {
		return nil, err
	}
	if ckpt.ConfigHash(cfgJSON) != wantHash {
		return nil, ckpt.ErrConfigHash
	}
	src := cr.String(maxSource)
	entry := cr.Int()
	if err := cr.Err(); err != nil {
		return nil, err
	}

	cfg, err := config.Import(cfgJSON)
	if err != nil {
		return nil, fmt.Errorf("%w: embedded configuration: %v", ckpt.ErrCorrupt, err)
	}
	set := isa.RV32IMF()
	regs := isa.NewRegisterFile()
	mem := memory.New(cfg.Memory)
	prog, err := asm.Assemble(src, set, regs, mem)
	if err != nil {
		return nil, fmt.Errorf("%w: embedded source does not assemble: %v", ckpt.ErrCorrupt, err)
	}
	if entry < 0 || (len(prog.Instructions) > 0 && entry >= len(prog.Instructions)) {
		return nil, fmt.Errorf("%w: entry %d outside code of %d instructions",
			ckpt.ErrCorrupt, entry, len(prog.Instructions))
	}
	s, err := core.New(cfg, set, regs, prog, mem, entry)
	if err != nil {
		return nil, fmt.Errorf("%w: rebuilding machine: %v", ckpt.ErrCorrupt, err)
	}
	s.DecodeState(cr)
	if footer := cr.U64(); cr.Err() == nil && uint32(footer) != ckpt.FooterMagic {
		cr.Corrupt("bad footer 0x%08x", footer)
	}
	if err := cr.Err(); err != nil {
		return nil, err
	}
	m := &Machine{cfg: cfg, set: set, regs: regs, prog: prog, sim: s, entry: entry, src: src}
	if cfg.SnapshotInterval > 0 {
		m.EnableSnapshots(uint64(cfg.SnapshotInterval))
	}
	return m, nil
}

// StateHash returns a 64-bit FNV-1a digest of the machine's checkpoint
// encoding. Because the encoding is deterministic and covers the complete
// state, equal hashes mean byte-identical machines; the determinism CI
// gate compares these per cycle between an original and a restored run.
func (m *Machine) StateHash() uint64 {
	h := fnv.New64a()
	// Writing to a hash cannot fail, and the encoder holds no other
	// error source, so the error is structurally nil here.
	_ = m.Checkpoint(h)
	return h.Sum64()
}
