package sim

import (
	"bytes"
	"encoding/json"
	"testing"
)

// traceTestProgram mixes ALU work, a mispredicting loop and memory
// traffic so the trace covers every stage including squashes.
const traceTestProgram = `
main:
  addi t0, x0, 0
  addi t1, x0, 200
  addi t3, x0, 0
loop:
  addi t0, t0, 1
  andi t4, t0, 3
  sw   t4, 0(x0)
  lw   t5, 0(x0)
  add  t3, t3, t5
  bne  t0, t1, loop
  ret
`

// TestTraceRestoredSessionGolden is the tentpole's acceptance gate: a
// session checkpointed mid-run and restored must emit byte-identical
// stage events to an uninterrupted run traced from the same cycle. The
// comparison is on the JSON wire encoding, so any drift — ordering,
// cycle stamps, details, disassembly — fails loudly.
func TestTraceRestoredSessionGolden(t *testing.T) {
	const splitCycle = 73 // mid-flight: ROB, LSU and windows are occupied

	// Uninterrupted run: trace from splitCycle to completion.
	a, err := NewFromAsm(DefaultConfig(), traceTestProgram, "")
	if err != nil {
		t.Fatal(err)
	}
	a.StepN(splitCycle)
	if a.Halted() {
		t.Fatal("program finished before the split point; lengthen it")
	}
	ringA := NewTraceRing(1<<17, NoTraceFilter())
	a.SetTracer(ringA)
	a.Run(1_000_000)
	if !a.Halted() {
		t.Fatal("uninterrupted run did not halt")
	}

	// Checkpoint a second machine at the same cycle, restore, trace.
	b, err := NewFromAsm(DefaultConfig(), traceTestProgram, "")
	if err != nil {
		t.Fatal(err)
	}
	b.StepN(splitCycle)
	var snap bytes.Buffer
	if err := b.Checkpoint(&snap); err != nil {
		t.Fatal(err)
	}
	r, err := Restore(bytes.NewReader(snap.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	ringR := NewTraceRing(1<<17, NoTraceFilter())
	r.SetTracer(ringR)
	r.Run(1_000_000)
	if !r.Halted() {
		t.Fatal("restored run did not halt")
	}

	evA, evR := ringA.Events(), ringR.Events()
	if ringA.Dropped() != 0 || ringR.Dropped() != 0 {
		t.Fatalf("ring too small for the run: dropped %d/%d", ringA.Dropped(), ringR.Dropped())
	}
	if len(evA) == 0 {
		t.Fatal("no events traced after the split point")
	}
	jsonA, err := json.Marshal(evA)
	if err != nil {
		t.Fatal(err)
	}
	jsonR, err := json.Marshal(evR)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(jsonA, jsonR) {
		max := len(evA)
		if len(evR) < max {
			max = len(evR)
		}
		for i := 0; i < max; i++ {
			if evA[i] != evR[i] {
				t.Fatalf("restored trace diverges at event %d:\n  uninterrupted: %+v\n  restored:      %+v",
					i, evA[i], evR[i])
			}
		}
		t.Fatalf("restored trace has %d events, uninterrupted %d", len(evR), len(evA))
	}
}

// TestTraceFilteredRestoreGolden repeats the equivalence under a stage +
// PC filter, the configuration the streaming endpoint uses.
func TestTraceFilteredRestoreGolden(t *testing.T) {
	const splitCycle = 50
	filter, err := ParseTraceFilter("commit,squash", "3:8")
	if err != nil {
		t.Fatal(err)
	}

	run := func(restore bool) []StageEvent {
		m, err := NewFromAsm(DefaultConfig(), traceTestProgram, "")
		if err != nil {
			t.Fatal(err)
		}
		m.StepN(splitCycle)
		if restore {
			var snap bytes.Buffer
			if err := m.Checkpoint(&snap); err != nil {
				t.Fatal(err)
			}
			if m, err = Restore(bytes.NewReader(snap.Bytes())); err != nil {
				t.Fatal(err)
			}
		}
		ring := NewTraceRing(1<<16, filter)
		m.SetTracer(ring)
		m.Run(1_000_000)
		return ring.Events()
	}

	direct, restored := run(false), run(true)
	if len(direct) == 0 {
		t.Fatal("filter matched nothing; test program or filter wrong")
	}
	jd, _ := json.Marshal(direct)
	jr, _ := json.Marshal(restored)
	if !bytes.Equal(jd, jr) {
		t.Fatalf("filtered traces differ: %d vs %d events", len(direct), len(restored))
	}
	for _, ev := range direct {
		if ev.PC < 3 || ev.PC > 8 {
			t.Fatalf("event escaped the PC filter: %+v", ev)
		}
	}
}

// TestTraceSurvivesGotoCycle: rewinding replays without re-emitting, and
// the tracer stays attached for subsequent forward steps.
func TestTraceSurvivesGotoCycle(t *testing.T) {
	m, err := NewFromAsm(DefaultConfig(), traceTestProgram, "")
	if err != nil {
		t.Fatal(err)
	}
	ring := NewTraceRing(1<<16, NoTraceFilter())
	m.SetTracer(ring)
	m.StepN(40)
	before := ring.Total()
	if err := m.GotoCycle(10); err != nil {
		t.Fatal(err)
	}
	if got := ring.Total(); got != before {
		t.Errorf("GotoCycle re-emitted the past: %d -> %d events", before, got)
	}
	if m.Tracer() == nil {
		t.Fatal("tracer lost across GotoCycle")
	}
	m.StepN(5)
	if ring.Total() <= before {
		t.Error("no events after resuming from a rewind")
	}
}

// TestLogBoundKeepsNewest: the maxLogEntries knob bounds the debug log
// and the newest entries survive trimming.
func TestLogBoundKeepsNewest(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxLogEntries = 8
	// A tight mispredicting loop writes one flush line per iteration.
	m, err := NewFromAsm(cfg, `
  addi t0, x0, 0
  addi t1, x0, 64
loop:
  addi t0, t0, 1
  andi t2, t0, 1
  bne  t2, x0, skip
  addi t3, x0, 7
skip:
  bne  t0, t1, loop
`, "")
	if err != nil {
		t.Fatal(err)
	}
	m.Run(1_000_000)
	log := m.Log()
	if len(log) == 0 {
		t.Fatal("expected flush entries in the debug log")
	}
	if len(log) > 8 {
		t.Fatalf("log has %d entries, bound is 8", len(log))
	}
	// The final halt line is the newest entry and must have survived.
	last := log[len(log)-1]
	if last.Cycle != m.Cycle() {
		t.Errorf("newest log entry is from cycle %d, machine halted at %d (oldest-kept semantics?)",
			last.Cycle, m.Cycle())
	}
}
