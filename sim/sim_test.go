package sim

import (
	"strings"
	"testing"
)

func TestQuickstartFlow(t *testing.T) {
	m, err := NewFromAsm(DefaultConfig(), `
li a0, 40
addi a0, a0, 2
`, "")
	if err != nil {
		t.Fatal(err)
	}
	m.Run(10_000)
	if !m.Halted() {
		t.Fatal("not halted")
	}
	v, err := m.IntReg("a0")
	if err != nil || v != 42 {
		t.Errorf("a0 = %d, %v", v, err)
	}
	r := m.Report()
	if r.Committed != 2 {
		t.Errorf("committed = %d", r.Committed)
	}
}

func TestCFlow(t *testing.T) {
	m, err := NewFromC(DefaultConfig(), `
int square(int x) { return x * x; }
int main() { return square(7); }`, 2)
	if err != nil {
		t.Fatal(err)
	}
	m.Run(100_000)
	v, _ := m.IntReg("a0")
	if v != 49 {
		t.Errorf("a0 = %d, want 49", v)
	}
}

func TestBackwardAPI(t *testing.T) {
	m, err := NewFromAsm(DefaultConfig(), "li t0, 1\nli t1, 2\nli t2, 3\n", "")
	if err != nil {
		t.Fatal(err)
	}
	m.StepN(3)
	if err := m.StepBack(); err != nil {
		t.Fatal(err)
	}
	if m.Cycle() != 2 {
		t.Errorf("cycle = %d, want 2", m.Cycle())
	}
	if err := m.GotoCycle(5); err != nil {
		t.Fatal(err)
	}
	if m.Cycle() != 5 && !m.Halted() {
		t.Errorf("cycle = %d, want 5", m.Cycle())
	}
}

func TestRegisterAndMemoryAccess(t *testing.T) {
	m, err := NewFromAsm(DefaultConfig(), `
la t0, buf
lw a0, 0(t0)
.data
buf: .word 99
`, "")
	if err != nil {
		t.Fatal(err)
	}
	addr, size, ok := m.LookupLabel("buf")
	if !ok || size != 4 {
		t.Fatalf("LookupLabel: ok=%v size=%d", ok, size)
	}
	// Overwrite via the memory editor before running.
	if err := m.WriteMemory(addr, []byte{42, 0, 0, 0}); err != nil {
		t.Fatal(err)
	}
	m.Run(10_000)
	v, _ := m.IntReg("a0")
	if v != 42 {
		t.Errorf("a0 = %d, want 42", v)
	}
	b, err := m.ReadMemory(addr, 4)
	if err != nil || b[0] != 42 {
		t.Errorf("ReadMemory = %v, %v", b, err)
	}
	dump, err := m.HexDump(addr, 16)
	if err != nil || !strings.Contains(dump, "2a") {
		t.Errorf("HexDump = %q, %v", dump, err)
	}
}

func TestSetIntRegBeforeRun(t *testing.T) {
	m, err := NewFromAsm(DefaultConfig(), "add a0, a1, a2\n", "")
	if err != nil {
		t.Fatal(err)
	}
	m.SetIntReg("a1", 30)
	m.SetIntReg("a2", 12)
	m.Run(1000)
	v, _ := m.IntReg("a0")
	if v != 42 {
		t.Errorf("a0 = %d, want 42", v)
	}
}

func TestCompileAndFilter(t *testing.T) {
	res, err := CompileC("int main() { return 3; }", 0)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Assembly, "main:") {
		t.Error("no main label")
	}
	if FilterAssembly(res.Assembly) == "" {
		t.Error("filter produced empty output")
	}
}

func TestPresetsAvailable(t *testing.T) {
	if len(Presets()) < 3 {
		t.Error("expected at least 3 presets")
	}
	for _, w := range []int{1, 2, 4, 8} {
		if _, err := WidthConfig(w); err != nil {
			t.Errorf("WidthConfig(%d): %v", w, err)
		}
	}
}

func TestConfigRoundTripThroughFacade(t *testing.T) {
	cfg := Wide4Config()
	data, err := cfg.Export()
	if err != nil {
		t.Fatal(err)
	}
	got, err := ImportConfig(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != cfg.Name {
		t.Error("round trip changed config")
	}
}

func TestDisassembleAndState(t *testing.T) {
	m, err := NewFromAsm(DefaultConfig(), "main:\n  li a0, 5\n  ret\n", "main")
	if err != nil {
		t.Fatal(err)
	}
	dis := m.Disassemble()
	if !strings.Contains(dis, "main:") || !strings.Contains(dis, "addi") {
		t.Errorf("disassembly:\n%s", dis)
	}
	st := m.State(false)
	if st.Cycle != 0 || len(st.IntRegs) != 32 {
		t.Error("initial state wrong")
	}
}

func TestErrorPaths(t *testing.T) {
	if _, err := NewFromAsm(DefaultConfig(), "bogus\n", ""); err == nil {
		t.Error("bad asm should fail")
	}
	if _, err := NewFromAsm(DefaultConfig(), "nop\n", "missing"); err == nil {
		t.Error("bad entry should fail")
	}
	if _, err := NewFromC(DefaultConfig(), "int main( {", 0); err == nil {
		t.Error("bad C should fail")
	}
	m, _ := NewFromAsm(DefaultConfig(), "nop\n", "")
	if _, err := m.IntReg("f5"); err == nil {
		t.Error("IntReg(f5) should fail")
	}
	if _, err := m.FloatReg("x5"); err == nil {
		t.Error("FloatReg(x5) should fail")
	}
}
