package sim

import (
	"bytes"
	"fmt"
	"runtime"
	"sync"

	"riscvsim/internal/ckpt"
	"riscvsim/internal/core"
	"riscvsim/internal/stats"
)

// Time-parallel simulation (docs/parallel.md): one long run is split into
// K intervals along the committed-instruction axis and the intervals are
// simulated in detailed mode concurrently, one goroutine and one
// core.Fresh fork each. Interval start states are produced speculatively
// by a serial fast-forward scout pass (~15× detailed speed) that drops
// state snapshots at known committed counts; each worker restores the
// snapshot below its interval, runs a detailed warm-up prefix whose
// metrics are discarded (fast-forward cannot reproduce timing state —
// caches, predictor, occupancies), and measures its interval as a
// statistics delta. The coordinator verifies every speculation: interval
// i's detailed end state must hash-equal interval i+1's start state
// (architectural state at a committed-count boundary is path-independent,
// pinned by core's TestRunToCommittedCrossEngine); a mismatch means the
// speculative state was wrong, and the interval re-runs from the now-exact
// predecessor state — self-healing, with serial execution as the fixed
// point. The final architectural state is always bit-exact with the
// serial run: the last interval's machine ran detailed from a verified
// (or healed) state to the real halt and is adopted as the machine's
// simulation. Only the stitched timing metrics carry the documented
// warm-up approximation.

// DefaultWarmupInstructions is the detailed warm-up prefix run (and
// discarded) at the head of each speculatively-started interval, in
// committed instructions. Sized to refill the default 16KiB L1 and the
// branch predictor tables a few times over — docs/parallel.md derives
// the resulting metric error bound.
const DefaultWarmupInstructions = 20_000

// parallelMinMeasure is the smallest measured interval worth a worker;
// shorter remainders fold into the serial fallback.
const parallelMinMeasure = 256

// ParallelOptions tunes Machine.RunParallel.
type ParallelOptions struct {
	// WarmupInstructions is the per-interval detailed warm-up prefix in
	// committed instructions; 0 selects DefaultWarmupInstructions.
	WarmupInstructions uint64
	// MaxCycles bounds the detailed work, like Run's argument: the scout
	// pass must halt within MaxCycles×CommitWidth committed instructions
	// and no single interval may run longer than MaxCycles detailed
	// cycles. Required (0 is an error): time-parallel simulation only
	// works for terminating programs.
	MaxCycles uint64
}

// IntervalResult describes one interval of a parallel run.
type IntervalResult struct {
	// Start/End are the interval's measurement boundaries in committed
	// instructions: this worker's statistics cover [Start, End).
	Start uint64 `json:"start"`
	End   uint64 `json:"end"`
	// Warmup is the discarded detailed warm-up prefix length in committed
	// instructions (0 for interval 0, which starts exact).
	Warmup uint64 `json:"warmup"`
	// Cycles is the measured detailed cycle count of the interval.
	Cycles uint64 `json:"cycles"`
	// Healed records that the speculative start state failed hash
	// verification and the interval was re-run from the predecessor's
	// exact end state.
	Healed bool `json:"healed,omitempty"`
}

// ParallelResult is the outcome of a parallel run.
type ParallelResult struct {
	// Report is the stitched statistics document: per-interval deltas
	// folded with stats.Merge. Integer counters sum the intervals
	// exactly; their values differ from a serial run only by the
	// warm-up approximation (docs/parallel.md).
	Report *Report `json:"report"`
	// Intervals describes each interval in order.
	Intervals []IntervalResult `json:"intervals"`
	// Workers is the parallelism actually used after sizing the run
	// (1 means the run degenerated to serial execution, exact by
	// definition).
	Workers int `json:"workers"`
	// Healed counts intervals that failed speculation verification and
	// re-ran from exact state.
	Healed int `json:"healed"`
	// ScoutCommitted is the committed-instruction count the fast-forward
	// scout executed (its wall cost amortizes across workers).
	ScoutCommitted uint64 `json:"scoutCommitted"`
}

// parallelTestCorrupt, when set (tests only), mutates worker i's
// simulation after its warm-up and before its start-state hash is taken —
// forcing the speculation-verification mismatch path so healing is
// exercised end to end.
var parallelTestCorrupt func(interval int, s *core.Simulation)

// scoutSnap is one speculative start-state candidate: the dynamic state
// section at a known committed-instruction count. data == nil is the
// implicit cycle-zero candidate.
type scoutSnap struct {
	committed uint64
	data      []byte
}

// parallelWorker is one interval's execution state.
type parallelWorker struct {
	sim       *core.Simulation
	start     uint64 // measurement boundary (committed instructions)
	end       uint64 // successor's boundary; last worker runs to halt
	warmup    uint64
	last      bool
	baseline  *stats.Report // statistics snapshot at start (nil = zero)
	endReport *stats.Report // statistics snapshot at end
	startHash uint64        // arch hash of the state measurement began from
	endHash   uint64        // arch hash after reaching end (drained)
	cycles    uint64        // measured detailed cycles
	healed    bool
	err       error
}

// RunParallel simulates the machine's program to completion on k
// concurrent detailed workers (k<=0 selects GOMAXPROCS) and returns the
// stitched statistics. The machine must sit at cycle zero. On success the
// machine holds the final simulation state — bit-exact with a serial run
// (same ArchStateHash, registers, memory, halt story) — and, like a
// fast-forwarded run, carries a rewind barrier at the final cycle: the
// parallel intervals leave no serial timing history to navigate into.
// Breakpoints and watches do not fire during a parallel run (they carry
// over to the adopted machine afterwards), and no trace events are
// emitted. On error the machine is left untouched at cycle zero.
func (m *Machine) RunParallel(k int, opts ParallelOptions) (*ParallelResult, error) {
	if k <= 0 {
		k = runtime.GOMAXPROCS(0)
	}
	if opts.MaxCycles == 0 {
		return nil, fmt.Errorf("sim: RunParallel requires MaxCycles > 0")
	}
	if m.sim.Cycle() != 0 {
		return nil, fmt.Errorf("sim: RunParallel requires a machine at cycle 0 (at %d)", m.sim.Cycle())
	}
	if m.sim.Halted() || m.sim.Paused() {
		return nil, fmt.Errorf("sim: RunParallel requires a runnable machine")
	}
	warmup := opts.WarmupInstructions
	if warmup == 0 {
		warmup = DefaultWarmupInstructions
	}

	// Phase 1 — scout: one serial fast-forward pass over the whole
	// program learns the total committed-instruction count N and drops
	// state snapshots at known committed counts, the speculative interval
	// start states. Budget: a detailed run of MaxCycles cycles commits at
	// most MaxCycles×CommitWidth instructions.
	total, snaps, err := m.scoutPass(k, warmup, opts.MaxCycles)
	if err != nil {
		return nil, err
	}

	// Size the run: every interval needs its warm-up plus something worth
	// measuring. Degenerate runs fall back to plain serial execution
	// (exact, no barrier — the run keeps its full rewind history).
	for k > 1 && total < uint64(k)*(warmup+parallelMinMeasure) {
		k--
	}
	if k == 1 {
		m.Run(opts.MaxCycles)
		if !m.sim.Halted() {
			return nil, fmt.Errorf("sim: program did not halt within %d cycles", opts.MaxCycles)
		}
		return &ParallelResult{
			Report:         m.Report(),
			Workers:        1,
			ScoutCommitted: total,
			Intervals: []IntervalResult{
				{Start: 0, End: m.sim.Committed(), Cycles: m.sim.Cycle()},
			},
		}, nil
	}

	// Phase 2 — plan boundaries: interval i's measurement starts at
	// m_i = snap_i.committed + warmup where snap_i is the latest scout
	// snapshot at or below the nominal split i×N/k minus the warm-up.
	// Anchoring boundaries at snapshots keeps every warm-up exactly
	// `warmup` long; the snapshot spacing bounds the imbalance.
	workers := make([]*parallelWorker, 0, k)
	workers = append(workers, &parallelWorker{start: 0})
	chosen := []scoutSnap{{}}
	for i := 1; i < k; i++ {
		nominal := total * uint64(i) / uint64(k)
		var snapAt uint64
		if nominal > warmup {
			snapAt = nominal - warmup
		}
		sn := latestSnapAtOrBelow(snaps, snapAt)
		start := sn.committed + warmup
		prev := workers[len(workers)-1]
		if start <= prev.start+parallelMinMeasure || start+parallelMinMeasure > total {
			continue // interval collapsed into its neighbor
		}
		workers = append(workers, &parallelWorker{start: start, warmup: warmup})
		chosen = append(chosen, sn)
	}
	for i, w := range workers {
		if i+1 < len(workers) {
			w.end = workers[i+1].start
		} else {
			w.last = true
			w.end = total
		}
	}

	// Phase 3 — fork and run all intervals concurrently. Forks are built
	// serially (cheap: static world is shared); everything else runs in
	// the goroutines.
	for _, w := range workers {
		ws, err := m.sim.Fresh()
		if err != nil {
			return nil, err
		}
		ws.ClearDebugState()
		w.sim = ws
	}
	var wg sync.WaitGroup
	for i, w := range workers {
		wg.Add(1)
		go func(i int, w *parallelWorker) {
			defer wg.Done()
			w.err = w.runInterval(m, i, chosen[i], opts.MaxCycles)
		}(i, w)
	}
	wg.Wait()
	for _, w := range workers {
		if w.err != nil {
			return nil, w.err
		}
	}

	// Phase 4 — verify the speculation chain and heal mismatches.
	// Interval i's detailed end state and interval i+1's speculative
	// start state sit at the same committed-count boundary, so their
	// architectural hashes must match; if not, the speculation was wrong
	// and interval i+1 re-runs from i's end state — which IS the exact
	// state, because interval 0 starts exact and healing preserves the
	// invariant inductively. Healing cascades; the worst case is the
	// serial run.
	healed := 0
	for i := 0; i+1 < len(workers); i++ {
		w, next := workers[i], workers[i+1]
		if w.endHash == next.startHash {
			continue
		}
		healed++
		hs := w.sim // at next.start, coherent (drained for hashing)
		w.sim = nil
		nw := &parallelWorker{
			sim: hs, start: next.start, end: next.end, last: next.last,
			warmup: 0, healed: true, startHash: w.endHash,
		}
		nw.baseline = hs.Report()
		if err := nw.measure(opts.MaxCycles); err != nil {
			return nil, err
		}
		workers[i+1] = nw
	}

	// Phase 5 — stitch statistics and adopt the final machine state.
	var merged *stats.Report
	result := &ParallelResult{Workers: len(workers), Healed: healed}
	for _, w := range workers {
		merged = stats.Merge(merged, stats.Diff(w.endReport, w.baseline))
		result.Intervals = append(result.Intervals, IntervalResult{
			Start: w.start, End: w.end, Warmup: w.warmup,
			Cycles: w.cycles, Healed: w.healed,
		})
	}
	result.Report = merged
	result.ScoutCommitted = total

	final := workers[len(workers)-1].sim
	final.SyncDebugState(m.sim)
	final.SetTracer(m.sim.Tracer())
	m.sim = final
	// The parallel region has no serial timing history: barrier rewinds
	// into it, exactly like a fast-forwarded prefix.
	m.ffBarrier = final.Cycle()
	m.dropSnapshotsBelow(m.ffBarrier)
	return result, nil
}

// scoutPass runs the whole program once in fast-forward mode on a fork,
// capturing state snapshots at known committed counts. Snapshot spacing
// starts at the warm-up length (so boundaries land within one warm-up of
// their nominal split) and doubles whenever the retained count exceeds
// its bound, classic adaptive thinning.
func (m *Machine) scoutPass(k int, warmup, maxCycles uint64) (uint64, []scoutSnap, error) {
	scout, err := m.sim.Fresh()
	if err != nil {
		return 0, nil, err
	}
	scout.ClearDebugState()
	scout.SetEngineMode(core.EngineFastForward)
	budget := maxCycles * uint64(m.cfg.CommitWidth)
	if budget < maxCycles { // overflow
		budget = maxCycles
	}
	stride := warmup
	if stride < 1024 {
		stride = 1024
	}
	retain := 8 * k
	if retain < 16 {
		retain = 16
	}
	var snaps []scoutSnap
	for !scout.Halted() && scout.Cycle() < budget {
		next := scout.Committed() + stride
		scout.RunToCommitted(next, budget-scout.Cycle())
		if scout.Halted() || scout.Paused() {
			break
		}
		var buf bytes.Buffer
		w := ckpt.NewWriter(&buf)
		scout.EncodeState(w)
		if err := w.Err(); err != nil {
			return 0, nil, fmt.Errorf("sim: scout snapshot: %w", err)
		}
		snaps = append(snaps, scoutSnap{committed: scout.Committed(), data: buf.Bytes()})
		if len(snaps) > retain {
			kept := snaps[:0]
			for i := range snaps {
				if i%2 == 1 {
					kept = append(kept, snaps[i])
				}
			}
			for i := len(kept); i < len(snaps); i++ {
				snaps[i] = scoutSnap{}
			}
			snaps = kept
			stride *= 2
		}
	}
	if !scout.Halted() {
		return 0, nil, fmt.Errorf("sim: program did not halt within the scout budget of %d committed instructions — time-parallel simulation requires a terminating run", budget)
	}
	return scout.Committed(), snaps, nil
}

// latestSnapAtOrBelow picks the youngest snapshot not past the target
// committed count; the zero value is the implicit cycle-zero start.
func latestSnapAtOrBelow(snaps []scoutSnap, target uint64) scoutSnap {
	best := scoutSnap{}
	for _, sn := range snaps {
		if sn.committed > target {
			break
		}
		best = sn
	}
	return best
}

// runInterval executes one worker: restore the speculative start
// snapshot, run the detailed warm-up to the measurement boundary, record
// the baseline and the start-state hash, then measure to the interval
// end.
func (w *parallelWorker) runInterval(m *Machine, i int, sn scoutSnap, maxCycles uint64) error {
	if sn.data != nil {
		r := ckpt.NewReader(bytes.NewReader(sn.data))
		w.sim.DecodeState(r)
		if err := r.Err(); err != nil {
			return fmt.Errorf("sim: interval %d: restoring scout state: %w", i, err)
		}
	}
	if w.start > 0 {
		w.sim.RunToCommitted(w.start, maxCycles)
		if w.sim.Committed() != w.start || w.sim.Halted() {
			return fmt.Errorf("sim: interval %d: warm-up ended at %d committed (halted=%v), want %d",
				i, w.sim.Committed(), w.sim.Halted(), w.start)
		}
		w.baseline = w.sim.Report()
		if parallelTestCorrupt != nil {
			parallelTestCorrupt(i, w.sim)
		}
		h, err := coherentHash(m, w.sim)
		if err != nil {
			return fmt.Errorf("sim: interval %d: hashing start state: %w", i, err)
		}
		w.startHash = h
	}
	return w.measure(maxCycles)
}

// measure runs the worker's measurement window [start, end) and records
// its end report and (for non-final intervals) the coherent end-state
// hash. The final interval runs to the program's real halt — its
// simulation becomes the machine's final state.
func (w *parallelWorker) measure(maxCycles uint64) error {
	before := w.sim.Cycle()
	if w.last {
		w.sim.Run(maxCycles)
		if !w.sim.Halted() {
			return fmt.Errorf("sim: final interval did not halt within %d cycles", maxCycles)
		}
	} else {
		w.sim.RunToCommitted(w.end, maxCycles)
		// A halt before the boundary means the speculative start state
		// diverged from the true run (the scout promised more
		// instructions); the end-hash comparison below catches it and
		// healing re-runs the successor — and this interval's own start
		// was either exact or already healed.
	}
	w.cycles = w.sim.Cycle() - before
	w.endReport = w.sim.Report()
	// Hash after the report: draining perturbs cache counters and must
	// not leak into the measured statistics. The last interval halted,
	// so its state is already coherent (halt paths drain + flush).
	if !w.last {
		w.sim.DrainCoherent()
		w.endHash = w.sim.ArchHash()
	}
	return nil
}

// coherentHash computes the architectural hash of a live simulation
// without perturbing it: the state round-trips through a scratch fork
// which is drained and hashed in its place.
func coherentHash(m *Machine, s *core.Simulation) (uint64, error) {
	var buf bytes.Buffer
	w := ckpt.NewWriter(&buf)
	s.EncodeState(w)
	if err := w.Err(); err != nil {
		return 0, err
	}
	scratch, err := m.sim.Fresh()
	if err != nil {
		return 0, err
	}
	r := ckpt.NewReader(bytes.NewReader(buf.Bytes()))
	scratch.DecodeState(r)
	if err := r.Err(); err != nil {
		return 0, err
	}
	scratch.DrainCoherent()
	return scratch.ArchHash(), nil
}
