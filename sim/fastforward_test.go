package sim

import (
	"errors"
	"strings"
	"testing"
)

// ffTestLoop: a 3-instruction prefix, then a 3-instruction loop body, so
// fast-forward block boundaries fall at cycles 3+3k — every multiple of
// 3. The loop leaves a checkable sum in t0 and halts on pipeline empty.
const ffTestLoop = `
  li t0, 0
  li t1, 1
  li t2, 2000
loop:
  add t0, t0, t1
  addi t1, t1, 1
  bne t1, t2, loop
`

func ffBuild(t *testing.T) *Machine {
	t.Helper()
	m, err := NewFromAsm(DefaultConfig(), ffTestLoop, "")
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestFastForwardPrefixThenDetailed: a fast-forwarded prefix plus a
// detailed suffix must end in exactly the architectural state of an
// all-detailed run — the co-simulation contract of the mode switch.
func TestFastForwardPrefixThenDetailed(t *testing.T) {
	det := ffBuild(t)
	det.Run(2_000_000)
	if !det.Halted() {
		t.Fatal("detailed reference did not halt")
	}

	mixed := ffBuild(t)
	adv := mixed.FastForwardTo(1_000)
	if adv < 1_000 {
		t.Fatalf("FastForwardTo(1000) advanced only %d cycles", adv)
	}
	if mixed.EngineMode() != EngineSpecialized {
		t.Fatalf("engine mode after FastForwardTo = %v, want detailed restored", mixed.EngineMode())
	}
	mixed.Run(2_000_000)
	if !mixed.Halted() {
		t.Fatal("mixed run did not halt")
	}
	if mixed.HaltReason() != det.HaltReason() {
		t.Errorf("halt reason %q, want %q", mixed.HaltReason(), det.HaltReason())
	}
	if got, want := mixed.Committed(), det.Committed(); got != want {
		t.Errorf("committed %d, want %d", got, want)
	}
	if got, want := mixed.ArchStateHash(), det.ArchStateHash(); got != want {
		t.Errorf("ArchStateHash %#x, want %#x (fast-forward prefix changed architectural state)", got, want)
	}
}

// TestFastForwardToPC: the PC-targeted variant must cut the enclosing
// block and stop with the commit point exactly at the requested index.
func TestFastForwardToPC(t *testing.T) {
	m := ffBuild(t)
	ok, adv := m.FastForwardToPC(3, 100_000)
	if !ok {
		t.Fatalf("FastForwardToPC(3) did not reach pc 3 (pc=%d after %d cycles)", m.PC(), adv)
	}
	if m.PC() != 3 {
		t.Fatalf("pc = %d, want 3", m.PC())
	}
	// Resumes in detailed mode and still reaches the reference final state.
	det := ffBuild(t)
	det.Run(2_000_000)
	m.Run(2_000_000)
	if got, want := m.ArchStateHash(), det.ArchStateHash(); got != want {
		t.Errorf("ArchStateHash %#x, want %#x", got, want)
	}
}

// ffSwitchover drives one FF→detailed switchover with snapshots at the
// given interval, requesting the given fast-forward target, and checks
// the rewind contract around the resulting barrier: rewinds within the
// detailed suffix restore exact state, rewinds below the barrier are
// refused with the explanatory error.
func ffSwitchover(t *testing.T, interval, target uint64) {
	t.Helper()
	m := ffBuild(t)
	m.EnableSnapshots(interval)
	m.FastForwardTo(target)
	barrier := m.RewindBarrier()
	if barrier == 0 || barrier != m.Cycle() {
		t.Fatalf("rewind barrier = %d after switchover at cycle %d", barrier, m.Cycle())
	}

	// Forward through the detailed suffix, capturing a mid-suffix hash.
	m.Run(450)
	mid := m.Cycle()
	midHash := m.StateHash()
	m.Run(450)

	// Rewind within the suffix: must restore the captured state exactly,
	// whether the barrier fell on a snapshot-interval multiple or not
	// (the forced snapshot at the transition anchors it either way).
	if err := m.GotoCycle(mid); err != nil {
		t.Fatalf("GotoCycle(%d) within detailed suffix: %v", mid, err)
	}
	if got := m.StateHash(); got != midHash {
		t.Errorf("StateHash after rewind to %d = %#x, want %#x", mid, got, midHash)
	}

	// Rewinding to the barrier itself must work too.
	if err := m.GotoCycle(barrier); err != nil {
		t.Errorf("GotoCycle(barrier %d): %v", barrier, err)
	}

	// Below the barrier: refused with the stable sentinel and the
	// fast-forward explanation.
	for _, tgt := range []uint64{barrier - 1, 1, 0} {
		err := m.GotoCycle(tgt)
		if err == nil {
			t.Fatalf("GotoCycle(%d) below barrier %d unexpectedly succeeded", tgt, barrier)
		}
		if !errors.Is(err, ErrRewindBarrier) {
			t.Errorf("GotoCycle(%d) error %v does not wrap ErrRewindBarrier", tgt, err)
		}
		if !strings.Contains(err.Error(), "fast-forward") {
			t.Errorf("GotoCycle(%d) error %q does not explain the fast-forwarded region", tgt, err)
		}
	}

	// StepBack from the barrier is a below-barrier rewind.
	if err := m.GotoCycle(barrier); err != nil {
		t.Fatal(err)
	}
	if err := m.StepBack(); !errors.Is(err, ErrRewindBarrier) {
		t.Errorf("StepBack across the rewind barrier: err %v, want ErrRewindBarrier", err)
	}
}

// TestFastForwardSwitchoverOnSnapshotInterval: the mode transition lands
// exactly on a snapshot-interval multiple (block boundaries are at 3+3k
// here, and 300 is one of them).
func TestFastForwardSwitchoverOnSnapshotInterval(t *testing.T) {
	ffSwitchover(t, 300, 300)
}

// TestFastForwardSwitchoverOffSnapshotInterval: the transition lands
// between interval multiples, so only the forced transition snapshot can
// anchor suffix rewinds.
func TestFastForwardSwitchoverOffSnapshotInterval(t *testing.T) {
	ffSwitchover(t, 300, 301)
}
