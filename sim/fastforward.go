package sim

import (
	"errors"
	"fmt"
)

// Fast-forward orchestration: run a prefix of the simulation in the
// functional fast-forward engine (core/blockplan.go — fused basic-block
// plans, architectural state only, ~one committed instruction per cycle),
// then continue in the detailed pipeline from the exact commit point. The
// fast-forwarded region has no timing history, so the machine records a
// rewind barrier at every mode transition: backward navigation below the
// barrier is refused, and a forced snapshot at the transition keeps
// rewinds within the detailed suffix working.

// FastForwardTo advances the machine to at least the target cycle in
// fast-forward mode, then restores the previous engine mode. Execution
// stops at the first basic-block boundary at or after the target (a block
// is never split mid-run), on halt, or on pause. It returns the number of
// cycles advanced. Interval snapshots are not taken inside the
// fast-forwarded region — it has no timing history to rewind into — but
// one is forced at each boundary of the region when snapshots are on.
func (m *Machine) FastForwardTo(target uint64) uint64 {
	start := m.sim.Cycle()
	if target <= start {
		return 0
	}
	prev := m.sim.EngineMode()
	m.SetEngineMode(EngineFastForward)
	m.sim.Run(target - start)
	m.SetEngineMode(prev)
	return m.sim.Cycle() - start
}

// FastForwardToPC advances in fast-forward mode until the commit point
// reaches the given code index, cutting the enclosing basic block there
// (any PC is a legal block boundary), then restores the previous engine
// mode. maxCycles bounds the search — the PC may never be reached. It
// reports whether the machine stopped exactly at pc.
func (m *Machine) FastForwardToPC(pc int, maxCycles uint64) (bool, uint64) {
	start := m.sim.Cycle()
	prev := m.sim.EngineMode()
	m.SetEngineMode(EngineFastForward)
	m.sim.SetFFStopPC(pc)
	for m.sim.Cycle()-start < maxCycles && !m.sim.Halted() && !m.sim.Paused() &&
		m.sim.PC() != pc {
		m.sim.Step()
	}
	m.sim.SetFFStopPC(-1)
	m.SetEngineMode(prev)
	return m.sim.PC() == pc, m.sim.Cycle() - start
}

// ArchStateHash digests the architectural machine state — registers,
// memory, committed-instruction bookkeeping, halt story — excluding all
// timing state. A fast-forwarded run and a detailed run of the same
// program agree on it exactly when they agree architecturally; StateHash
// remains the full cycle-accurate digest within one mode.
func (m *Machine) ArchStateHash() uint64 { return m.sim.ArchHash() }

// RewindBarrier returns the cycle below which backward navigation is
// unavailable because an engine-mode transition erased the timing
// history, 0 when the whole run is rewindable.
func (m *Machine) RewindBarrier() uint64 { return m.ffBarrier }

// noteModeSwitch maintains the rewind barrier: any transition into or out
// of fast-forward at a nonzero cycle makes earlier cycles unreplayable
// (a from-zero replay would re-run them under the new mode's semantics of
// time), so snapshots below the transition are dropped and one is forced
// at the transition point to anchor rewinds in the new region.
func (m *Machine) noteModeSwitch(mode EngineMode) {
	old := m.sim.EngineMode()
	if old == mode || (old != EngineFastForward && mode != EngineFastForward) {
		return
	}
	c := m.sim.Cycle()
	if c == 0 {
		return
	}
	m.ffBarrier = c
	m.dropSnapshotsBelow(c)
	m.forceSnapshot()
}

// ErrRewindBarrier is the sentinel wrapped by every refusal to navigate
// backward across a region without timing history (a fast-forwarded
// prefix, a time-parallel run). API surfaces dispatch on it with
// errors.Is to return a stable machine-readable code instead of matching
// message text.
var ErrRewindBarrier = errors.New("rewind barrier")

// errBelowBarrier explains a refused rewind across a fast-forwarded region.
func (m *Machine) errBelowBarrier(target uint64) error {
	return fmt.Errorf("sim: cannot rewind to cycle %d: cycles below %d have no timing history (engine-mode switch; fast-forwarded regions cannot be replayed in detail): %w", target, m.ffBarrier, ErrRewindBarrier)
}
