package sim

import (
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"riscvsim/internal/ckpt"
)

var updateGolden = flag.Bool("update", false, "rewrite golden checkpoint files")

// loopProgram exercises every pipeline structure: data-dependent
// branches, loads, stores, and enough iterations to run for hundreds of
// thousands of cycles.
const loopProgram = `
	li   s0, 0          # outer counter
	li   s1, 200        # outer limit
outer:
	la   t0, data
	li   t1, 0          # index
	li   t2, 256        # element count
	li   s2, 0          # running sum
inner:
	slli t3, t1, 2
	add  t4, t0, t3
	lw   t5, 0(t4)
	bltz t5, skip       # data-dependent branch
	add  s2, s2, t5
	sw   s2, 0(t4)
skip:
	addi t1, t1, 1
	blt  t1, t2, inner
	addi s0, s0, 1
	blt  s0, s1, outer
	ret

.data
data: .zero 1024
`

// newLoopMachine builds the loop machine and fills its array with
// deterministic pseudo-random values derived from seed.
func newLoopMachine(t *testing.T, seed uint64) *Machine {
	t.Helper()
	m, err := NewFromAsm(DefaultConfig(), loopProgram, "")
	if err != nil {
		t.Fatal(err)
	}
	addr, size, ok := m.LookupLabel("data")
	if !ok {
		t.Fatal("no data label")
	}
	buf := make([]byte, size)
	s := seed*0x9E3779B97F4A7C15 + 1
	for i := 0; i < len(buf); i += 4 {
		s ^= s << 13
		s ^= s >> 7
		s ^= s << 17
		v := uint32(s)
		buf[i], buf[i+1], buf[i+2], buf[i+3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
	}
	if err := m.WriteMemory(addr, buf); err != nil {
		t.Fatal(err)
	}
	return m
}

// checkpointBytes round-trips a machine through its binary encoding.
func checkpointBytes(t *testing.T, m *Machine) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := m.Checkpoint(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestCheckpointRoundTripMidRun(t *testing.T) {
	m := newLoopMachine(t, 7)
	m.StepN(1000) // mid-flight: ROB, windows, LSU and FUs all busy
	if m.Halted() {
		t.Fatal("program halted during warm-up")
	}

	data := checkpointBytes(t, m)
	r, err := Restore(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}

	// The restored machine reports the same state immediately...
	if m.Cycle() != r.Cycle() {
		t.Fatalf("cycle: %d vs %d", m.Cycle(), r.Cycle())
	}
	s1, _ := json.Marshal(m.State(true))
	s2, _ := json.Marshal(r.State(true))
	if !bytes.Equal(s1, s2) {
		t.Error("State differs immediately after restore")
	}
	if !reflect.DeepEqual(m.Report(), r.Report()) {
		t.Error("Report differs immediately after restore")
	}

	// ...and stays byte-identical to the uninterrupted run at every
	// future step, all the way to the halt.
	for i := 0; !m.Halted(); i++ {
		m.Step()
		r.Step()
		if i%1000 == 0 && m.StateHash() != r.StateHash() {
			t.Fatalf("state diverged at cycle %d", m.Cycle())
		}
	}
	if !r.Halted() {
		t.Fatal("restored machine did not halt with the original")
	}
	if !reflect.DeepEqual(m.Report(), r.Report()) {
		t.Error("final Report differs")
	}
	v1, _ := m.IntReg("s2")
	v2, _ := r.IntReg("s2")
	if v1 != v2 {
		t.Errorf("s2: %d vs %d", v1, v2)
	}
}

// TestCheckpointDeterminism is the CI determinism gate: snapshot mid-run,
// restore, and compare per-cycle state hashes for 10k cycles across 3
// seeds. A hash is a digest of the complete checkpoint encoding, so equal
// hashes mean byte-identical machine state.
func TestCheckpointDeterminism(t *testing.T) {
	const cycles = 10_000
	for seed := uint64(1); seed <= 3; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			m := newLoopMachine(t, seed)
			m.StepN(2000)
			if m.Halted() {
				t.Fatal("program halted during warm-up")
			}
			r, err := Restore(bytes.NewReader(checkpointBytes(t, m)))
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < cycles && !m.Halted(); i++ {
				m.Step()
				r.Step()
				if m.StateHash() != r.StateHash() {
					t.Fatalf("state hash diverged at cycle %d", m.Cycle())
				}
			}
		})
	}
}

func TestCheckpointOfRestoredMachineIsIdentical(t *testing.T) {
	m := newLoopMachine(t, 11)
	m.StepN(1500)
	data := checkpointBytes(t, m)
	r, err := Restore(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, checkpointBytes(t, r)) {
		t.Error("re-encoding a restored machine is not byte-identical")
	}
}

func TestCheckpointPreservesDebugState(t *testing.T) {
	m := newLoopMachine(t, 3)
	if err := m.AddBreakpoint(5); err != nil {
		t.Fatal(err)
	}
	addr, _, _ := m.LookupLabel("data")
	if err := m.AddWatch(addr, 4); err != nil {
		t.Fatal(err)
	}
	m.StepN(100)
	r, err := Restore(bytes.NewReader(checkpointBytes(t, m)))
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Sim().Breakpoints(); len(got) != 1 || got[0] != 5 {
		t.Errorf("breakpoints = %v", got)
	}
}

// TestCheckpointGoldenWireFormat pins the binary encoding: any change to
// the layout must bump ckpt.Version and regenerate this file with
// `go test ./sim -run Golden -update`.
func TestCheckpointGoldenWireFormat(t *testing.T) {
	m, err := NewFromAsm(DefaultConfig(), `
	li   t0, 5
loop:
	addi t0, t0, -1
	bne  t0, x0, loop
	ret
`, "")
	if err != nil {
		t.Fatal(err)
	}
	m.StepN(20)
	data := checkpointBytes(t, m)

	golden := filepath.Join("testdata", "checkpoint_v1.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden file (regenerate with -update): %v", err)
	}
	if !bytes.Equal(data, want) {
		t.Errorf("wire format drifted from golden file (%d vs %d bytes); if intentional, bump ckpt.Version and regenerate with -update",
			len(data), len(want))
	}
	// And the golden stream must still restore.
	if _, err := Restore(bytes.NewReader(want)); err != nil {
		t.Errorf("golden checkpoint does not restore: %v", err)
	}
}

func TestRestoreRejectsBadMagic(t *testing.T) {
	m := newLoopMachine(t, 1)
	data := checkpointBytes(t, m)
	bad := append([]byte(nil), data...)
	copy(bad, "NOPE")
	if _, err := Restore(bytes.NewReader(bad)); !errors.Is(err, ckpt.ErrBadMagic) {
		t.Errorf("err = %v, want ErrBadMagic", err)
	}
}

func TestRestoreRejectsNewerVersion(t *testing.T) {
	m := newLoopMachine(t, 1)
	data := checkpointBytes(t, m)
	bad := append([]byte(nil), data...)
	bad[4] = 99 // version varint directly after the 4-byte magic
	if _, err := Restore(bytes.NewReader(bad)); !errors.Is(err, ckpt.ErrVersion) {
		t.Errorf("err = %v, want ErrVersion", err)
	}
}

func TestRestoreRejectsConfigHashMismatch(t *testing.T) {
	m := newLoopMachine(t, 1)
	data := checkpointBytes(t, m)
	bad := append([]byte(nil), data...)
	// Flip one byte inside the embedded configuration JSON (which starts
	// after magic(4) + version(1) + hash(8) + a short length varint).
	bad[20] ^= 0xFF
	if _, err := Restore(bytes.NewReader(bad)); !errors.Is(err, ckpt.ErrConfigHash) {
		t.Errorf("err = %v, want ErrConfigHash", err)
	}
}

func TestRestoreRejectsTruncatedStream(t *testing.T) {
	m := newLoopMachine(t, 1)
	m.StepN(500)
	data := checkpointBytes(t, m)
	for _, cut := range []int{16, len(data) / 4, len(data) / 2, len(data) - 1} {
		if _, err := Restore(bytes.NewReader(data[:cut])); !errors.Is(err, ckpt.ErrTruncated) {
			t.Errorf("cut at %d: err = %v, want ErrTruncated", cut, err)
		}
	}
}

func TestRestoreRejectsCorruptBody(t *testing.T) {
	m := newLoopMachine(t, 1)
	m.StepN(500)
	data := checkpointBytes(t, m)
	// Truncate mid-body and splice a wrong section tag stream: the decoder
	// must fail with a ckpt sentinel, never panic.
	bad := append([]byte(nil), data[:len(data)/2]...)
	bad = append(bad, bytes.Repeat([]byte{0xFF}, 64)...)
	if _, err := Restore(bytes.NewReader(bad)); err == nil {
		t.Error("corrupt body restored without error")
	}
}
