package sim

import (
	"testing"
)

const snapshotLoop = `
  li t0, 0
  li t1, 1
  li t2, 30000
loop:
  add t0, t0, t1
  addi t1, t1, 1
  bne t1, t2, loop
`

// TestSnapshotRewindMatchesReplay: a snapshot-accelerated rewind must
// land on a machine byte-identical to the paper's from-zero replay, at
// several depths, and forward steps afterwards must stay identical.
func TestSnapshotRewindMatchesReplay(t *testing.T) {
	fast, err := NewFromAsm(DefaultConfig(), snapshotLoop, "")
	if err != nil {
		t.Fatal(err)
	}
	fast.EnableSnapshots(1000)
	slow, err := NewFromAsm(DefaultConfig(), snapshotLoop, "")
	if err != nil {
		t.Fatal(err)
	}

	fast.Run(20_000)
	slow.Run(20_000)
	if fast.Cycle() != slow.Cycle() {
		t.Fatalf("cycle drift before rewinding: %d vs %d", fast.Cycle(), slow.Cycle())
	}
	if fast.SnapshotCount() == 0 {
		t.Fatal("no snapshots retained after 20k cycles at interval 1000")
	}

	for _, target := range []uint64{19_999, 12_345, 999, 17} {
		if err := fast.GotoCycle(target); err != nil {
			t.Fatalf("snapshot rewind to %d: %v", target, err)
		}
		if err := slow.GotoCycle(target); err != nil {
			t.Fatalf("replay rewind to %d: %v", target, err)
		}
		if fh, sh := fast.StateHash(), slow.StateHash(); fh != sh {
			t.Fatalf("state diverged at cycle %d: %016x vs %016x", target, fh, sh)
		}
		// Step forward a few cycles and re-check: the restored pipeline
		// must behave exactly like the replayed one.
		fast.StepN(7)
		slow.StepN(7)
		if fh, sh := fast.StateHash(), slow.StateHash(); fh != sh {
			t.Fatalf("state diverged stepping after rewind to %d", target)
		}
		// Re-align for the next depth.
		fast.Run(20_000 - fast.Cycle())
		slow.Run(20_000 - slow.Cycle())
	}
}

// TestSnapshotStepBack: single-cycle backward steps through snapshots
// keep the canonical cycle-0 error and land on the right cycle.
func TestSnapshotStepBack(t *testing.T) {
	m, err := NewFromAsm(DefaultConfig(), snapshotLoop, "")
	if err != nil {
		t.Fatal(err)
	}
	m.EnableSnapshots(500)
	m.Run(5_000)
	for i := 0; i < 3; i++ {
		want := m.Cycle() - 1
		if err := m.StepBack(); err != nil {
			t.Fatal(err)
		}
		if m.Cycle() != want {
			t.Fatalf("StepBack landed on %d, want %d", m.Cycle(), want)
		}
	}

	zero, err := NewFromAsm(DefaultConfig(), snapshotLoop, "")
	if err != nil {
		t.Fatal(err)
	}
	zero.EnableSnapshots(0)
	if err := zero.StepBack(); err == nil {
		t.Error("StepBack at cycle 0 should fail")
	}
}

// TestSnapshotRetentionBound: a long run must not accumulate unbounded
// snapshots; thinning doubles the interval instead.
func TestSnapshotRetentionBound(t *testing.T) {
	m, err := NewFromAsm(DefaultConfig(), `
  li t0, 0
  li t1, 1
  li t2, 200000
loop:
  add t0, t0, t1
  addi t1, t1, 1
  bne t1, t2, loop
`, "")
	if err != nil {
		t.Fatal(err)
	}
	m.EnableSnapshots(64)
	m.Run(600_000)
	if got := m.SnapshotCount(); got > defaultMaxSnapshots {
		t.Errorf("%d snapshots retained, bound is %d", got, defaultMaxSnapshots)
	}
	if m.SnapshotInterval() <= 64 {
		t.Errorf("interval stayed %d; thinning should have doubled it", m.SnapshotInterval())
	}
	// The retained set must still accelerate a deep rewind correctly.
	if err := m.GotoCycle(100_000); err != nil {
		t.Fatal(err)
	}
	if m.Cycle() != 100_000 {
		t.Errorf("rewind landed on %d", m.Cycle())
	}
}

// TestSnapshotConfigKnob: the architecture-level snapshotInterval enables
// snapshots on machines built from it.
func TestSnapshotConfigKnob(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SnapshotInterval = 777
	m, err := NewFromAsm(cfg, snapshotLoop, "")
	if err != nil {
		t.Fatal(err)
	}
	if m.SnapshotInterval() != 777 {
		t.Errorf("interval = %d, want 777", m.SnapshotInterval())
	}
	cfg2 := DefaultConfig()
	cfg2.SnapshotInterval = -1
	if errs := cfg2.Validate(); len(errs) == 0 {
		t.Error("negative snapshotInterval should fail validation")
	}
}

// TestSnapshotRewindKeepsDebugState: breakpoints added after a snapshot
// survive a snapshot-accelerated rewind, and the catch-up replay itself
// never pauses (ReplayTo's contract).
func TestSnapshotRewindKeepsDebugState(t *testing.T) {
	m, err := NewFromAsm(DefaultConfig(), snapshotLoop, "")
	if err != nil {
		t.Fatal(err)
	}
	m.EnableSnapshots(1000)
	m.Run(10_000)
	if err := m.AddBreakpoint(3); err != nil { // the loop branch: hit every iteration
		t.Fatal(err)
	}
	if err := m.GotoCycle(9_500); err != nil {
		t.Fatal(err)
	}
	if m.Paused() {
		t.Fatal("catch-up replay paused on a breakpoint")
	}
	if got := m.Sim().Breakpoints(); len(got) != 1 || got[0] != 3 {
		t.Errorf("breakpoints after rewind = %v, want [3]", got)
	}
	if !m.RunToBreak(1_000) {
		t.Error("breakpoint did not trigger after snapshot rewind")
	}
}
