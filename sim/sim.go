// Package sim is the public API of the superscalar RISC-V simulator: a
// facade over the internal packages that assembles (or compiles) a
// program, builds a processor from an architecture description, and runs
// interactive or batch simulations with full runtime statistics.
//
// Quick start:
//
//	m, err := sim.NewFromAsm(sim.DefaultConfig(), src, "")
//	m.Run(1_000_000)
//	fmt.Println(m.Report().FormatText())
package sim

import (
	"fmt"

	"riscvsim/internal/asm"
	"riscvsim/internal/compiler"
	"riscvsim/internal/config"
	"riscvsim/internal/core"
	"riscvsim/internal/costmodel"
	"riscvsim/internal/expr"
	"riscvsim/internal/fault"
	"riscvsim/internal/isa"
	"riscvsim/internal/memory"
	"riscvsim/internal/stats"
	"riscvsim/internal/trace"
)

// Re-exported types so downstream users can name everything through this
// package.
type (
	// Config is the complete processor architecture description (the
	// paper's Architecture Settings JSON).
	Config = config.CPU
	// Report is the runtime-statistics document.
	Report = stats.Report
	// State is a full processor snapshot for display.
	State = core.State
	// Exception is a simulation fault (division by zero, bad access...).
	Exception = fault.Exception
	// CompileResult is C compiler output: assembly plus line links.
	CompileResult = compiler.Result
	// Program is an assembled program.
	Program = asm.Program
	// LogEntry is one timestamped debug-log message.
	LogEntry = core.LogEntry

	// Tracer receives typed pipeline-stage events (internal/trace).
	Tracer = trace.Tracer
	// StageEvent is one typed stage transition of a dynamic instruction.
	StageEvent = trace.StageEvent
	// TraceFilter selects stages and a PC range for a trace collector.
	TraceFilter = trace.Filter
	// TraceRing is the bounded ring-buffer trace collector.
	TraceRing = trace.Ring

	// EngineMode selects how instruction semantics are computed
	// (specialized fast path vs forced interpreter).
	EngineMode = core.EngineMode
)

// Engine modes. EngineSpecialized is the default; EngineInterpreter
// forces the expression interpreter for every instruction — the
// functional reference path the co-simulation fuzzer compares against
// (docs/fuzzing.md).
const (
	EngineSpecialized = core.EngineSpecialized
	EngineInterpreter = core.EngineInterpreter
	EngineFastForward = core.EngineFastForward
)

// NewTraceRing builds a bounded ring-buffer trace collector; attach it
// with Machine.SetTracer. Use NoTraceFilter() to keep every event.
func NewTraceRing(capacity int, f TraceFilter) *TraceRing {
	return trace.NewRing(capacity, f)
}

// NoTraceFilter returns the match-everything trace filter.
func NoTraceFilter() TraceFilter { return trace.NoFilter }

// ParseTraceFilter parses the stage ("fetch,commit" / "all") and PC-range
// ("lo:hi") filter grammars documented in docs/trace.md.
func ParseTraceFilter(stages, pcRange string) (TraceFilter, error) {
	return trace.ParseFilter(stages, pcRange)
}

// DefaultConfig returns the standard 2-wide superscalar preset.
func DefaultConfig() *Config { return config.Default() }

// ScalarConfig returns the 1-wide scalar preset.
func ScalarConfig() *Config { return config.Scalar() }

// Wide4Config returns the aggressive 4-wide preset.
func Wide4Config() *Config { return config.Wide4() }

// WidthConfig returns a preset with the given fetch/commit width (1, 2, 4
// or 8).
func WidthConfig(width int) (*Config, error) { return config.WidthPreset(width) }

// Presets returns all named architecture presets.
func Presets() map[string]*Config { return config.Presets() }

// ImportConfig parses and validates an architecture JSON document.
func ImportConfig(data []byte) (*Config, error) { return config.Import(data) }

// CompileC translates C source to RISC-V assembly at optimization level
// 0..3, standing in for the paper's GCC interface.
func CompileC(src string, opt int) (*CompileResult, error) {
	return compiler.Compile(src, opt)
}

// FilterAssembly strips compiler noise from generated assembly (the
// paper's output filter).
func FilterAssembly(src string) string { return asm.FilterCompilerOutput(src) }

// Machine is one simulation instance with everything needed to run,
// inspect, and step it forward or backward.
type Machine struct {
	cfg   *Config
	set   *isa.Set
	regs  *isa.RegisterFile
	prog  *asm.Program
	sim   *core.Simulation
	entry int
	// src is the assembly source the machine was built from; checkpoints
	// embed it so Restore can rebuild the static program deterministically.
	src string
	// cfgJSON caches the exported architecture document for checkpoint
	// headers (per-cycle state hashing re-encodes the header each time).
	cfgJSON []byte

	// Interval snapshots (snapshot.go): spacing, retained captures and
	// the retention bound. snapInterval == 0 means off.
	snapInterval uint64
	snaps        []snapshot
	maxSnaps     int

	// ffBarrier is the cycle of the most recent engine-mode transition
	// involving fast-forward (fastforward.go): cycles below it have no
	// replayable timing history, so rewinds there are refused.
	ffBarrier uint64
}

// NewFromAsm assembles RISC-V assembly source and builds a machine. entry
// names the entry label; empty means the first instruction.
func NewFromAsm(cfg *Config, src, entry string) (*Machine, error) {
	set := isa.RV32IMF()
	regs := isa.NewRegisterFile()
	mem := memory.New(cfg.Memory)
	prog, err := asm.Assemble(src, set, regs, mem)
	if err != nil {
		return nil, err
	}
	e, err := prog.EntryPoint(entry)
	if err != nil {
		return nil, err
	}
	s, err := core.New(cfg, set, regs, prog, mem, e)
	if err != nil {
		return nil, err
	}
	m := &Machine{cfg: cfg, set: set, regs: regs, prog: prog, sim: s, entry: e, src: src}
	if cfg.SnapshotInterval > 0 {
		m.EnableSnapshots(uint64(cfg.SnapshotInterval))
	}
	return m, nil
}

// NewFromC compiles C source at the given optimization level, then
// assembles and builds a machine starting at main (or the first
// instruction when no main exists).
func NewFromC(cfg *Config, csrc string, opt int) (*Machine, error) {
	res, err := compiler.Compile(csrc, opt)
	if err != nil {
		return nil, err
	}
	m, err := NewFromAsm(cfg, res.Assembly, "")
	if err != nil {
		return nil, fmt.Errorf("sim: assembling compiler output: %w", err)
	}
	return m, nil
}

// Step advances one clock cycle.
func (m *Machine) Step() {
	m.sim.Step()
	m.maybeSnapshot()
}

// StepN advances up to n cycles, stopping early on halt. It returns the
// cycles actually executed.
func (m *Machine) StepN(n uint64) uint64 { return m.runForward(n) }

// Run simulates until the program ends or maxCycles elapse.
func (m *Machine) Run(maxCycles uint64) uint64 { return m.runForward(maxCycles) }

// StepBack rewinds one cycle (the paper's backward simulation: a
// deterministic forward re-run, §III-B). With interval snapshots enabled
// the re-run starts from the nearest snapshot instead of cycle zero.
func (m *Machine) StepBack() error {
	if m.sim.Cycle() == 0 {
		_, err := m.sim.StepBack() // canonical "already at cycle 0" error
		return err
	}
	return m.rewindTo(m.sim.Cycle() - 1)
}

// GotoCycle repositions the simulation at an arbitrary cycle (used by the
// debug log's click-to-navigate).
func (m *Machine) GotoCycle(target uint64) error {
	if target >= m.sim.Cycle() {
		m.runForward(target - m.sim.Cycle())
		return nil
	}
	return m.rewindTo(target)
}

// Cycle returns the executed cycle count.
func (m *Machine) Cycle() uint64 { return m.sim.Cycle() }

// Halted reports whether the simulation ended.
func (m *Machine) Halted() bool { return m.sim.Halted() }

// HaltReason describes why the simulation ended.
func (m *Machine) HaltReason() string { return m.sim.HaltReason() }

// Exception returns the raised exception, or nil.
func (m *Machine) Exception() *Exception { return m.sim.Exception() }

// Report builds the full runtime-statistics document.
func (m *Machine) Report() *Report { return m.sim.Report() }

// State captures a complete processor snapshot.
func (m *Machine) State(includeLog bool) *State { return m.sim.State(includeLog) }

// Log returns the debug log.
func (m *Machine) Log() []LogEntry { return m.sim.Log() }

// SetVerboseLog toggles per-event debug logging (commit and pipeline-flush
// lines). Off by default, so the hot loop formats no log messages; halts,
// exceptions and breakpoint pauses are always logged.
func (m *Machine) SetVerboseLog(v bool) { m.sim.VerboseLog = v }

// Disassemble renders the loaded program.
func (m *Machine) Disassemble() string { return m.prog.Disassemble() }

// IntReg reads an architectural integer register by name or ABI alias.
func (m *Machine) IntReg(name string) (int32, error) {
	d, ok := m.regs.Lookup(name)
	if !ok || d.Class != isa.RegInt {
		return 0, fmt.Errorf("sim: no integer register %q", name)
	}
	return m.sim.Registers().ArchValue(isa.RegInt, d.Index).Int(), nil
}

// FloatReg reads an architectural float register by name or ABI alias.
func (m *Machine) FloatReg(name string) (float64, error) {
	d, ok := m.regs.Lookup(name)
	if !ok || d.Class != isa.RegFloat {
		return 0, fmt.Errorf("sim: no float register %q", name)
	}
	return m.sim.Registers().ArchValue(isa.RegFloat, d.Index).Double(), nil
}

// SetIntReg initializes an architectural integer register (before running).
func (m *Machine) SetIntReg(name string, v int32) error {
	d, ok := m.regs.Lookup(name)
	if !ok || d.Class != isa.RegInt {
		return fmt.Errorf("sim: no integer register %q", name)
	}
	m.sim.Registers().SetArchValue(isa.RegInt, d.Index, expr.NewInt(v))
	return nil
}

// ReadMemory copies n bytes at addr from simulated memory.
func (m *Machine) ReadMemory(addr, n int) ([]byte, error) {
	b, exc := m.sim.Memory().ReadBytes(addr, n)
	if exc != nil {
		return nil, exc
	}
	return b, nil
}

// WriteMemory stores bytes into simulated memory (memory editor).
func (m *Machine) WriteMemory(addr int, b []byte) error {
	if exc := m.sim.Memory().WriteBytes(addr, b); exc != nil {
		return exc
	}
	return nil
}

// LookupLabel resolves a data label to its address and size.
func (m *Machine) LookupLabel(name string) (addr, size int, ok bool) {
	p, ok := m.sim.Memory().Lookup(name)
	if !ok {
		return 0, 0, false
	}
	return p.Addr, p.Size, true
}

// HexDump renders memory for the memory window.
func (m *Machine) HexDump(addr, n int) (string, error) {
	return m.sim.Memory().HexDump(addr, n)
}

// SetTracer attaches (nil detaches) a pipeline-trace sink. Tracing starts
// at the machine's current cycle; a machine restored from a checkpoint
// and given the same tracer emits events identical to an uninterrupted
// traced run from that cycle (the core is deterministic). Backward steps
// and GotoCycle replay silently — the replay itself emits nothing — and
// the tracer stays attached, so forward steps after a rewind re-emit
// those cycles as they re-execute (a debugger view redraws them; the
// events are byte-identical to the first pass, but an accumulating
// collector like the Ring counts them again — Reset it after rewinding
// if duplicates matter).
func (m *Machine) SetTracer(t Tracer) { m.sim.SetTracer(t) }

// Tracer returns the attached pipeline-trace sink, or nil.
func (m *Machine) Tracer() Tracer { return m.sim.Tracer() }

// SetEngineMode selects the semantic engine: the specialized fast path
// (default) or the forced expression interpreter. Timing is engine-
// independent, so two runs of the same program in different modes are
// cycle-identical exactly when the engines' semantics agree — the
// invariant the co-simulation fuzzer checks (docs/fuzzing.md). The mode
// is a runtime knob: it is not part of the architecture configuration
// and is not recorded in checkpoints. Transitions into or out of
// EngineFastForward additionally move the rewind barrier
// (fastforward.go): the fast-forwarded region has no timing history.
func (m *Machine) SetEngineMode(mode EngineMode) {
	m.noteModeSwitch(mode)
	m.sim.SetEngineMode(mode)
}

// EngineMode returns the active semantic engine.
func (m *Machine) EngineMode() EngineMode { return m.sim.EngineMode() }

// PC returns the next fetch program counter (a code index).
func (m *Machine) PC() int { return m.sim.PC() }

// Committed returns the committed instruction count so far.
func (m *Machine) Committed() uint64 { return m.sim.Committed() }

// Sim exposes the underlying core simulation for advanced integrations
// (the render package, benches).
func (m *Machine) Sim() *core.Simulation { return m.sim }

// ---------------------------------------------------------------------------
// Debugging (paper §V future work: breakpoints and watches)
// ---------------------------------------------------------------------------

// AddBreakpoint pauses the simulation when the instruction at pc is about
// to commit.
func (m *Machine) AddBreakpoint(pc int) error { return m.sim.AddBreakpoint(pc) }

// RemoveBreakpoint deletes a breakpoint.
func (m *Machine) RemoveBreakpoint(pc int) { m.sim.RemoveBreakpoint(pc) }

// AddWatch pauses the simulation when a committed store touches
// [addr, addr+size).
func (m *Machine) AddWatch(addr, size int) error { return m.sim.AddWatch(addr, size) }

// Paused reports whether a breakpoint or watch paused the simulation.
func (m *Machine) Paused() bool { return m.sim.Paused() }

// PauseReason describes what paused the simulation.
func (m *Machine) PauseReason() string { return m.sim.PauseReason() }

// Resume continues past a breakpoint/watch trigger.
func (m *Machine) Resume() { m.sim.Resume() }

// RunToBreak runs until a breakpoint/watch pauses, the program halts, or
// maxCycles elapse. It reports whether the machine is paused at a trigger.
func (m *Machine) RunToBreak(maxCycles uint64) bool {
	m.sim.Run(maxCycles)
	return m.sim.Paused()
}

// ---------------------------------------------------------------------------
// Cost model (paper §V future work: chip area and power estimation)
// ---------------------------------------------------------------------------

// CostReport is the chip-area and energy/power estimate.
type CostReport = costmodel.Report

// EstimateCost prices the machine's architecture and, using the current
// run's statistics, its energy and average power.
func (m *Machine) EstimateCost() *CostReport {
	return costmodel.Estimate(m.cfg, m.Report())
}

// EstimateArea prices an architecture without running anything.
func EstimateArea(cfg *Config) *CostReport { return costmodel.EstimateArea(cfg) }

// EstimateCostFor prices an architecture with an existing statistics report
// (e.g. one received over the server API).
func EstimateCostFor(cfg *Config, rep *Report) *CostReport {
	return costmodel.Estimate(cfg, rep)
}
