package sim

import (
	"bytes"
	"fmt"

	"riscvsim/internal/ckpt"
)

// Interval snapshots: periodic in-memory checkpoints taken while the
// machine runs forward, so backward simulation restores from the nearest
// snapshot at or below the target and replays only the remainder —
// O(interval) instead of the paper's O(cycle) re-run from zero (§III-B).
// The simulation is deterministic, so a snapshot-restored replay is
// cycle-for-cycle identical to a from-zero replay (pinned by
// TestSnapshotRewindMatchesReplay).
//
// Snapshots are off by default: batch runs never rewind and should not
// pay the encoding cost. Interactive surfaces (server debug sessions, the
// architecture's snapshotInterval knob) turn them on.

// DefaultSnapshotInterval is the cycle spacing used when snapshots are
// enabled without an explicit interval. Rewind cost is one state decode
// plus on average half an interval of replay; 1024 keeps a backward step
// comfortably under a millisecond on commodity hardware.
const DefaultSnapshotInterval = 1024

// defaultMaxSnapshots bounds the retained snapshot count. When the bound
// is exceeded every other snapshot is dropped and the interval doubles,
// so total memory stays bounded while coverage stays uniform over the
// whole run (classic adaptive checkpointing).
const defaultMaxSnapshots = 32

// snapshot is one retained state capture.
type snapshot struct {
	cycle uint64
	data  []byte
}

// EnableSnapshots turns interval snapshots on. interval is the cycle
// spacing; 0 selects DefaultSnapshotInterval. Already-retained snapshots
// are kept.
func (m *Machine) EnableSnapshots(interval uint64) {
	if interval == 0 {
		interval = DefaultSnapshotInterval
	}
	m.snapInterval = interval
	if m.maxSnaps == 0 {
		m.maxSnaps = defaultMaxSnapshots
	}
}

// DisableSnapshots turns interval snapshots off and drops retained ones.
func (m *Machine) DisableSnapshots() {
	m.snapInterval = 0
	m.snaps = nil
}

// SnapshotInterval returns the configured cycle spacing, 0 when off. The
// spacing can grow over a long run as the retention bound thins old
// snapshots.
func (m *Machine) SnapshotInterval() uint64 { return m.snapInterval }

// SnapshotCount returns the number of retained snapshots.
func (m *Machine) SnapshotCount() int { return len(m.snaps) }

// runForward advances up to maxCycles, pausing at snapshot boundaries to
// capture state. With snapshots off it is exactly the core's Run.
func (m *Machine) runForward(maxCycles uint64) uint64 {
	if m.snapInterval == 0 {
		return m.sim.Run(maxCycles)
	}
	start := m.sim.Cycle()
	for {
		done := m.sim.Cycle() - start
		if done >= maxCycles || m.sim.Halted() || m.sim.Paused() {
			break
		}
		chunk := m.snapInterval - m.sim.Cycle()%m.snapInterval
		if rem := maxCycles - done; chunk > rem {
			chunk = rem
		}
		if m.sim.Run(chunk) == 0 {
			break
		}
		m.maybeSnapshot()
	}
	return m.sim.Cycle() - start
}

// maybeSnapshot captures state when the machine sits on a snapshot
// boundary it has not covered yet.
func (m *Machine) maybeSnapshot() {
	if m.snapInterval == 0 {
		return
	}
	c := m.sim.Cycle()
	if c == 0 || c%m.snapInterval != 0 || m.sim.Halted() || m.sim.Paused() {
		return
	}
	if n := len(m.snaps); n > 0 && m.snaps[n-1].cycle >= c {
		// Re-running over ground an earlier pass covered: the run is
		// deterministic, so the retained snapshots are still valid.
		return
	}
	m.captureSnapshot(c)
}

// forceSnapshot captures state at the current cycle regardless of
// interval alignment — the anchor at an engine-mode transition
// (fastforward.go), where rewinds must be able to land without replaying
// across the fast-forwarded region.
func (m *Machine) forceSnapshot() {
	if m.snapInterval == 0 {
		return
	}
	c := m.sim.Cycle()
	if c == 0 || m.sim.Halted() || m.sim.Paused() {
		return
	}
	if n := len(m.snaps); n > 0 && m.snaps[n-1].cycle >= c {
		return
	}
	m.captureSnapshot(c)
}

// dropSnapshotsBelow discards snapshots older than cycle c — they became
// unreachable when an engine-mode transition at c erased the replayable
// history below it.
func (m *Machine) dropSnapshotsBelow(c uint64) {
	kept := m.snaps[:0]
	for i := range m.snaps {
		if m.snaps[i].cycle >= c {
			kept = append(kept, m.snaps[i])
		}
	}
	for i := len(kept); i < len(m.snaps); i++ {
		m.snaps[i] = snapshot{}
	}
	m.snaps = kept
}

// captureSnapshot encodes and retains the current state at cycle c,
// thinning the retained set when it exceeds the bound.
func (m *Machine) captureSnapshot(c uint64) {
	// Snapshots are in-process and bound to this machine, so only the
	// dynamic state section is encoded — no header, no embedded source,
	// no config round-trip (Machine.Checkpoint stays the portable
	// format).
	var buf bytes.Buffer
	w := ckpt.NewWriter(&buf)
	m.sim.EncodeState(w)
	if w.Err() != nil {
		return // never let snapshot bookkeeping break the run
	}
	m.snaps = append(m.snaps, snapshot{cycle: c, data: buf.Bytes()})
	if len(m.snaps) > m.maxSnaps {
		// Thin: keep every second snapshot (those on the doubled
		// interval's boundaries) and double the spacing.
		kept := m.snaps[:0]
		for i := range m.snaps {
			if i%2 == 1 {
				kept = append(kept, m.snaps[i])
			}
		}
		for i := len(kept); i < len(m.snaps); i++ {
			m.snaps[i] = snapshot{}
		}
		m.snaps = kept
		m.snapInterval *= 2
	}
}

// nearestSnapshot returns the index of the youngest snapshot at or below
// target, or -1.
func (m *Machine) nearestSnapshot(target uint64) int {
	best := -1
	for i := range m.snaps {
		if m.snaps[i].cycle > target {
			break
		}
		best = i
	}
	return best
}

// rewindTo repositions the machine at an earlier cycle: restore from the
// nearest snapshot and replay the remainder, falling back to the paper's
// from-zero replay when no snapshot precedes the target. After an
// engine-mode transition (fastforward.go) the cycles below the barrier
// have no timing history and from-zero replay would re-run the
// fast-forwarded region under different semantics of time, so only
// snapshot restores at or above the barrier are sound there.
func (m *Machine) rewindTo(target uint64) error {
	if m.ffBarrier > 0 && target < m.ffBarrier {
		return m.errBelowBarrier(target)
	}
	if m.snapInterval > 0 {
		if i := m.nearestSnapshot(target); i >= 0 && m.snaps[i].cycle >= m.ffBarrier {
			return m.restoreSnapshot(i, target)
		}
	}
	if m.ffBarrier > 0 {
		return fmt.Errorf("sim: cannot replay to cycle %d: replay would cross the fast-forwarded region below cycle %d and no snapshot covers it: %w", target, m.ffBarrier, ErrRewindBarrier)
	}
	ns, err := m.sim.ReplayTo(target)
	if err != nil {
		return err
	}
	m.sim = ns
	return nil
}

// restoreSnapshot rebuilds the simulation from snapshot i and replays
// forward to target. The static world (program, config, registers,
// initial memory image) is shared with the current simulation, so the
// restore cost is decoding dynamic state — not re-assembly. Mirrors
// ReplayTo's contract: the catch-up replay never pauses and never
// re-emits trace events; current debug state and the tracer carry over
// afterwards.
func (m *Machine) restoreSnapshot(i int, target uint64) error {
	ns, err := m.sim.Fresh()
	if err != nil {
		return err
	}
	r := ckpt.NewReader(bytes.NewReader(m.snaps[i].data))
	ns.DecodeState(r)
	if err := r.Err(); err != nil {
		return err
	}
	ns.ClearDebugState()
	if target > ns.Cycle() {
		ns.Run(target - ns.Cycle())
	}
	ns.SyncDebugState(m.sim)
	ns.SetTracer(m.sim.Tracer())
	m.sim = ns
	// Retained snapshots stay — determinism keeps them valid for
	// scrubbing forward again.
	return nil
}
