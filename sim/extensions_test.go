package sim

import (
	"strings"
	"testing"
)

// Tests for the paper's future-work extensions exposed through the facade:
// breakpoints/watches, pipelined functional units and the cost model (§V).

func TestBreakpointAPI(t *testing.T) {
	m, err := NewFromAsm(DefaultConfig(), `
li t0, 1
li t1, 2
add t2, t0, t1
`, "")
	if err != nil {
		t.Fatal(err)
	}
	if err := m.AddBreakpoint(2); err != nil {
		t.Fatal(err)
	}
	if !m.RunToBreak(100_000) {
		t.Fatal("RunToBreak should pause at the breakpoint")
	}
	if !strings.Contains(m.PauseReason(), "pc=2") {
		t.Errorf("PauseReason = %q", m.PauseReason())
	}
	v, _ := m.IntReg("t2")
	if v != 0 {
		t.Error("breakpointed instruction must not have committed")
	}
	m.Resume()
	m.Run(100_000)
	if !m.Halted() {
		t.Fatal("should finish after resume")
	}
	v, _ = m.IntReg("t2")
	if v != 3 {
		t.Errorf("t2 = %d, want 3", v)
	}
	m.RemoveBreakpoint(2)
}

func TestWatchAPI(t *testing.T) {
	m, err := NewFromAsm(DefaultConfig(), `
la t0, buf
li t1, 5
sw t1, 4(t0)
.data
buf: .zero 8
`, "")
	if err != nil {
		t.Fatal(err)
	}
	addr, _, _ := m.LookupLabel("buf")
	if err := m.AddWatch(addr+4, 4); err != nil {
		t.Fatal(err)
	}
	if !m.RunToBreak(100_000) {
		t.Fatal("watch should trigger")
	}
	if !strings.Contains(m.PauseReason(), "watch hit") {
		t.Errorf("PauseReason = %q", m.PauseReason())
	}
	m.Resume()
	m.Run(100_000)
	if !m.Halted() {
		t.Error("should finish after resume")
	}
}

func TestCostModelAPI(t *testing.T) {
	m, err := NewFromAsm(DefaultConfig(), `
li t0, 0
li t1, 1
li t2, 20
loop:
  add t0, t0, t1
  addi t1, t1, 1
  bne t1, t2, loop
`, "")
	if err != nil {
		t.Fatal(err)
	}
	m.Run(100_000)
	cr := m.EstimateCost()
	if cr.TotalKGE <= 0 || cr.TotalNanoJ <= 0 {
		t.Fatalf("cost report empty: %+v", cr)
	}
	text := cr.FormatText()
	if !strings.Contains(text, "Chip area") || !strings.Contains(text, "average power") {
		t.Errorf("cost text incomplete:\n%s", text)
	}
	// Area-only estimation without a run.
	area := EstimateArea(Wide4Config())
	if area.TotalKGE <= EstimateArea(ScalarConfig()).TotalKGE {
		t.Error("wide core should cost more than scalar")
	}
}

func TestPipelinedConfigThroughFacade(t *testing.T) {
	cfg := DefaultConfig()
	for i := range cfg.Units {
		cfg.Units[i].Pipelined = true
	}
	// Export/import preserves the flag.
	data, err := cfg.Export()
	if err != nil {
		t.Fatal(err)
	}
	got, err := ImportConfig(data)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Units[0].Pipelined {
		t.Error("Pipelined flag lost in config round trip")
	}
	m, err := NewFromC(cfg, "int main() { return 6 * 7; }", 2)
	if err != nil {
		t.Fatal(err)
	}
	m.Run(100_000)
	v, _ := m.IntReg("a0")
	if v != 42 {
		t.Errorf("a0 = %d, want 42", v)
	}
}
