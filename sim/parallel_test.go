package sim

import (
	"errors"
	"strings"
	"testing"

	"riscvsim/internal/core"
	"riscvsim/internal/expr"
	"riscvsim/internal/isa"
)

// srcParallel is a ~460k-instruction streaming copy loop: long enough to
// split into several intervals with a short warm-up, store-heavy so the
// coherence machinery (store buffer, dirty lines) is load-bearing in the
// boundary hashes.
const srcParallel = `
  li x20, 300
outer:
  li x5, 256
  li x6, 8192
  li x7, 16384
copy:
  lw x8, 0(x6)
  sw x8, 0(x7)
  addi x6, x6, 4
  addi x7, x7, 4
  addi x5, x5, -1
  bne x5, x0, copy
  addi x20, x20, -1
  bne x20, x0, outer
  li a0, 42
  ecall
`

const parTestMaxCycles = 5_000_000

func parTestOpts() ParallelOptions {
	return ParallelOptions{WarmupInstructions: 512, MaxCycles: parTestMaxCycles}
}

func serialReference(t *testing.T) *Machine {
	t.Helper()
	m, err := NewFromAsm(DefaultConfig(), srcParallel, "")
	if err != nil {
		t.Fatal(err)
	}
	m.Run(parTestMaxCycles)
	if !m.Halted() {
		t.Fatal("serial reference did not halt")
	}
	return m
}

// TestParallelMatchesSerial: the tentpole invariant — a parallel run ends
// in the bit-exact serial architectural state (hash, a0, committed count,
// halt story), its stitched committed count telescopes exactly, and its
// stitched timing is within the documented warm-up error bound.
func TestParallelMatchesSerial(t *testing.T) {
	ref := serialReference(t)
	refReport := ref.Report()

	for _, k := range []int{2, 4, 8} {
		m, err := NewFromAsm(DefaultConfig(), srcParallel, "")
		if err != nil {
			t.Fatal(err)
		}
		res, err := m.RunParallel(k, parTestOpts())
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if res.Workers < 2 {
			t.Fatalf("k=%d: degenerated to %d workers", k, res.Workers)
		}
		if res.Healed != 0 {
			t.Errorf("k=%d: %d intervals healed on a clean run", k, res.Healed)
		}
		if !m.Halted() {
			t.Fatalf("k=%d: machine not halted", k)
		}
		if got, want := m.ArchStateHash(), ref.ArchStateHash(); got != want {
			t.Errorf("k=%d: ArchStateHash %#x, want %#x", k, got, want)
		}
		a0, err := m.IntReg("a0")
		if err != nil {
			t.Fatal(err)
		}
		if a0 != 42 {
			t.Errorf("k=%d: a0 = %d, want 42", k, a0)
		}
		if got, want := m.Committed(), ref.Committed(); got != want {
			t.Errorf("k=%d: committed %d, want %d", k, got, want)
		}
		if got, want := m.HaltReason(), ref.HaltReason(); got != want {
			t.Errorf("k=%d: halt reason %q, want %q", k, got, want)
		}
		// Stitched counters: committed telescopes exactly across the
		// interval boundaries.
		if got, want := res.Report.Committed, refReport.Committed; got != want {
			t.Errorf("k=%d: stitched committed %d, want %d", k, got, want)
		}
		// Timing metrics carry only the warm-up approximation.
		relErr := func(got, want uint64) float64 {
			d := float64(got) - float64(want)
			if d < 0 {
				d = -d
			}
			return d / float64(want)
		}
		if e := relErr(res.Report.Cycles, refReport.Cycles); e > 0.05 {
			t.Errorf("k=%d: stitched cycles %d vs serial %d (%.2f%% off)",
				k, res.Report.Cycles, refReport.Cycles, 100*e)
		}
		// Interval accounting is contiguous over [0, N).
		var prev uint64
		for idx, iv := range res.Intervals {
			if iv.Start != prev {
				t.Errorf("k=%d: interval %d starts at %d, want %d", k, idx, iv.Start, prev)
			}
			prev = iv.End
		}
		if prev != ref.Committed() {
			t.Errorf("k=%d: intervals end at %d, want %d", k, prev, ref.Committed())
		}
	}
}

// TestParallelHealing: corrupt one interval's speculative start state via
// the test hook — verification must detect the mismatch and heal by
// re-running from the exact predecessor state, still ending bit-exact.
func TestParallelHealing(t *testing.T) {
	ref := serialReference(t)
	for _, corrupt := range []int{1, 3} { // middle and last of 4 intervals
		parallelTestCorrupt = func(interval int, s *core.Simulation) {
			if interval == corrupt {
				// x28 (t3) is unused by the program: the corruption
				// survives to every later hash without changing control
				// flow — exactly a wrong speculative start state.
				s.Registers().SetArchValue(isa.RegInt, 28, expr.NewInt(0x0badf00d))
			}
		}
		m, err := NewFromAsm(DefaultConfig(), srcParallel, "")
		if err != nil {
			t.Fatal(err)
		}
		res, err := m.RunParallel(4, parTestOpts())
		parallelTestCorrupt = nil
		if err != nil {
			t.Fatalf("corrupt=%d: %v", corrupt, err)
		}
		if res.Healed == 0 {
			t.Fatalf("corrupt=%d: corruption went undetected", corrupt)
		}
		if got, want := m.ArchStateHash(), ref.ArchStateHash(); got != want {
			t.Errorf("corrupt=%d: healed run ArchStateHash %#x, want %#x", corrupt, got, want)
		}
		if got, want := res.Report.Committed, ref.Committed(); got != want {
			t.Errorf("corrupt=%d: stitched committed %d, want %d", corrupt, got, want)
		}
		healedSeen := false
		for _, iv := range res.Intervals {
			healedSeen = healedSeen || iv.Healed
		}
		if !healedSeen {
			t.Errorf("corrupt=%d: no interval marked healed", corrupt)
		}
	}
}

// TestParallelRewindBarrier: the parallel region has no serial timing
// history — backward navigation into it must fail with the stable
// ErrRewindBarrier sentinel, like a fast-forwarded prefix, while landing
// exactly ON the barrier cycle stays legal.
func TestParallelRewindBarrier(t *testing.T) {
	m, err := NewFromAsm(DefaultConfig(), srcParallel, "")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.RunParallel(2, parTestOpts()); err != nil {
		t.Fatal(err)
	}
	barrier := m.RewindBarrier()
	if barrier != m.Cycle() {
		t.Errorf("barrier at %d, want final cycle %d", barrier, m.Cycle())
	}
	if err := m.StepBack(); !errors.Is(err, ErrRewindBarrier) {
		t.Errorf("StepBack into the parallel region: err %v, want ErrRewindBarrier", err)
	}
	if err := m.GotoCycle(0); !errors.Is(err, ErrRewindBarrier) {
		t.Errorf("GotoCycle(0) into the parallel region: err %v, want ErrRewindBarrier", err)
	}
	if err := m.GotoCycle(barrier - 1); !errors.Is(err, ErrRewindBarrier) {
		t.Errorf("GotoCycle(barrier-1): err %v, want ErrRewindBarrier", err)
	}
	// Landing exactly on the barrier cycle is inside the navigable region.
	if err := m.GotoCycle(barrier); err != nil {
		t.Errorf("GotoCycle(barrier %d): %v", barrier, err)
	}
	if m.Cycle() != barrier {
		t.Errorf("after GotoCycle(barrier): at cycle %d, want %d", m.Cycle(), barrier)
	}
}

// TestParallelDegenerateSerial: a short program cannot amortize warm-up —
// the run falls back to exact serial execution with no barrier.
func TestParallelDegenerateSerial(t *testing.T) {
	const short = `
  li x5, 10
loop:
  addi x5, x5, -1
  bne x5, x0, loop
  li a0, 7
  ecall
`
	ref, err := NewFromAsm(DefaultConfig(), short, "")
	if err != nil {
		t.Fatal(err)
	}
	ref.Run(100_000)

	m, err := NewFromAsm(DefaultConfig(), short, "")
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.RunParallel(8, ParallelOptions{MaxCycles: 100_000})
	if err != nil {
		t.Fatal(err)
	}
	if res.Workers != 1 {
		t.Errorf("workers = %d, want 1 (serial fallback)", res.Workers)
	}
	if got, want := m.ArchStateHash(), ref.ArchStateHash(); got != want {
		t.Errorf("ArchStateHash %#x, want %#x", got, want)
	}
	if m.RewindBarrier() != 0 {
		t.Errorf("serial fallback set a rewind barrier at %d", m.RewindBarrier())
	}
	if res.Report.Cycles != ref.Cycle() {
		t.Errorf("serial fallback cycles %d, want %d", res.Report.Cycles, ref.Cycle())
	}
}

// TestParallelValidation: misuse is refused and leaves the machine
// untouched.
func TestParallelValidation(t *testing.T) {
	m, err := NewFromAsm(DefaultConfig(), srcParallel, "")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.RunParallel(4, ParallelOptions{}); err == nil ||
		!strings.Contains(err.Error(), "MaxCycles") {
		t.Errorf("MaxCycles=0 accepted: %v", err)
	}
	m.StepN(10)
	if _, err := m.RunParallel(4, parTestOpts()); err == nil ||
		!strings.Contains(err.Error(), "cycle 0") {
		t.Errorf("mid-run machine accepted: %v", err)
	}
	if m.Cycle() != 10 {
		t.Errorf("failed RunParallel moved the machine to cycle %d", m.Cycle())
	}
}
