//go:build race

package riscvsim

// raceDetectorEnabled reports whether this test binary was built with
// -race. Timing-shape tests (latency orderings under load) skip under
// the race detector: its instrumentation slows request handling by an
// order of magnitude, swamping the millisecond-scale deltas those tests
// assert. Correctness tests run everywhere.
const raceDetectorEnabled = true
