// Command loadtest reproduces the paper's Table I end-to-end: it launches
// (or targets) a simulation server and drives the paper's load scenarios —
// {Direct, Docker} × {30, 100} users, each performing 40 interactive
// simulation steps with a 4 s ramp-up and 1 s think time, gzip enabled —
// reporting median latency, 90th-percentile latency and throughput.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http/httptest"
	"os"
	"time"

	"riscvsim/internal/loadgen"
	"riscvsim/internal/server"
)

func main() {
	var (
		url         = flag.String("url", "", "target server URL (empty = spawn in-process servers)")
		users       = flag.String("users", "30,100", "comma-separated user counts")
		timeScale   = flag.Float64("time-scale", 1.0, "scale factor for ramp-up and think time (1.0 = the paper's real-time pacing)")
		noDocker    = flag.Bool("skip-docker", false, "skip the Docker-shim scenarios")
		batch       = flag.Int("batch", 0, "run an HPC sweep of N simulations via POST /api/v1/batch vs sequential /simulate and exit")
		multi       = flag.Int("multi", 0, "distributed mode: drive the scenarios through a consistent-hash router over N replicas (in-process when -url is empty, else -url must be a simrouter) and emit the capacity model")
		capacityOut = flag.String("capacity-out", "", "with -multi, also write the capacity model JSON to this file")
		seed        = flag.Int64("seed", 0, "deterministic user→program assignment seed (0 = round-robin); same plumbing as riscvsim -fuzz-seed")
	)
	flag.Parse()

	if *batch > 0 {
		runBatchComparison(*url, *batch)
		return
	}
	if *multi > 0 {
		runMulti(*url, *multi, *users, *timeScale, *seed, *capacityOut)
		return
	}

	var counts []int
	for _, f := range splitInts(*users) {
		counts = append(counts, f)
	}
	if len(counts) == 0 {
		fmt.Fprintln(os.Stderr, "loadtest: no user counts")
		os.Exit(2)
	}

	fmt.Println("Table I reproduction — measured latency and throughput")
	fmt.Printf("workload: 40 interactive steps/user, ramp-up %v, think time %v, gzip on\n\n",
		time.Duration(float64(4*time.Second)**timeScale),
		time.Duration(float64(time.Second)**timeScale))

	runRow := func(mode string, base string, n int) {
		sc := loadgen.PaperScenario(n, *timeScale)
		sc.Seed = *seed
		res, err := loadgen.Run(base, sc)
		if err != nil {
			fmt.Fprintf(os.Stderr, "loadtest: %s %d users: %v\n", mode, n, err)
			return
		}
		res.Mode = mode
		fmt.Println(res.String())
	}

	if *url != "" {
		for _, n := range counts {
			runRow("Remote", *url, n)
		}
		return
	}

	// Direct rows.
	direct := server.New(server.DefaultOptions())
	tsDirect := httptest.NewServer(direct.Handler())
	for _, n := range counts {
		runRow("Direct", tsDirect.URL, n)
	}
	tsDirect.Close()

	if *noDocker {
		return
	}
	// Docker rows via the containerization shim (DESIGN.md §1).
	dockerized := server.New(server.DefaultOptions())
	shim := loadgen.DefaultDockerShim(dockerized.Handler())
	tsDocker := httptest.NewServer(shim)
	for _, n := range counts {
		runRow("Docker", tsDocker.URL, n)
	}
	tsDocker.Close()
}

// runMulti reproduces the deployment tier's capacity measurement: the
// paper scenarios driven through the session router (docs/deployment.md)
// instead of one server, reporting router-path latency, requests/s and
// the sessions-per-GB storage figure.
func runMulti(url string, replicas int, users string, timeScale float64, seed int64, capacityOut string) {
	base := url
	if base == "" {
		cluster, err := loadgen.SpawnCluster(replicas, "")
		if err != nil {
			fmt.Fprintf(os.Stderr, "loadtest: %v\n", err)
			os.Exit(1)
		}
		defer cluster.Close()
		base = cluster.RouterURL
	} else if n, err := loadgen.HealthyReplicas(base); err != nil {
		fmt.Fprintf(os.Stderr, "loadtest: %s is not a simrouter (%v)\n", base, err)
		os.Exit(1)
	} else if n < replicas {
		fmt.Fprintf(os.Stderr, "loadtest: router reports %d healthy replicas, want %d\n", n, replicas)
		os.Exit(1)
	}

	fmt.Printf("Distributed capacity model — %d replicas behind the session router\n\n", replicas)
	var models []*loadgen.CapacityModel
	for _, n := range splitInts(users) {
		sc := loadgen.PaperScenario(n, timeScale)
		sc.Seed = seed
		m, err := loadgen.RunMulti(base, replicas, sc)
		if err != nil {
			fmt.Fprintf(os.Stderr, "loadtest: multi %d users: %v\n", n, err)
			os.Exit(1)
		}
		fmt.Println(m.String())
		models = append(models, m)
	}
	if capacityOut != "" {
		data, err := json.MarshalIndent(models, "", "  ")
		if err == nil {
			err = os.WriteFile(capacityOut, append(data, '\n'), 0o644)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "loadtest: writing %s: %v\n", capacityOut, err)
			os.Exit(1)
		}
		fmt.Printf("\ncapacity model written to %s\n", capacityOut)
	}
}

// runBatchComparison demonstrates the v1 batch endpoint: the same N-way
// width sweep as one /api/v1/batch round trip fanned out across the
// server's cores versus N sequential /api/v1/simulate calls.
func runBatchComparison(url string, n int) {
	base := url
	if base == "" {
		srv := server.New(server.DefaultOptions())
		ts := httptest.NewServer(srv.Handler())
		defer ts.Close()
		base = ts.URL
	}
	reqs := loadgen.WidthSweepRequests(n, loadgen.ProgramA, 100_000)

	seq, err := loadgen.SequentialSweep(base, reqs, true)
	if err != nil {
		fmt.Fprintf(os.Stderr, "loadtest: sequential sweep: %v\n", err)
		os.Exit(1)
	}
	bat, err := loadgen.BatchSweep(base, reqs, true)
	if err != nil {
		fmt.Fprintf(os.Stderr, "loadtest: batch sweep: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("HPC sweep, %d simulations:\n", n)
	fmt.Printf("  sequential /api/v1/simulate: %10v  (%d failed)\n", seq.Wall, seq.Failed)
	fmt.Printf("  one POST   /api/v1/batch:    %10v  (%d workers, server fan-out %v, %d failed)\n",
		bat.Wall, bat.Workers, bat.ServerWall, bat.Failed)
	if bat.Wall > 0 {
		fmt.Printf("  speedup: %.2fx\n", float64(seq.Wall)/float64(bat.Wall))
	}
}

func splitInts(s string) []int {
	var out []int
	cur := 0
	has := false
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == ',' {
			if has {
				out = append(out, cur)
			}
			cur, has = 0, false
			continue
		}
		if s[i] >= '0' && s[i] <= '9' {
			cur = cur*10 + int(s[i]-'0')
			has = true
		}
	}
	return out
}
