// Command distsmoke drives the distributed tier's end-to-end failover
// drill against a live router + replica deployment (the CI compose
// stack, or any simrouter URL):
//
//  1. create a session through the router and step it k1 cycles
//  2. checkpoint it (the write-through makes the shared store the
//     session's authority)
//  3. kill the replica that owns the session (-kill command template)
//  4. step the same session k2 more cycles through the router — the
//     new owner must rehydrate it from the store transparently
//  5. checkpoint again and compare the state hash against an
//     uninterrupted in-process run of k1+k2 cycles
//
// Exit status 0 means the failover continuation is bit-exact.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"strings"
	"time"

	"riscvsim/internal/api"
	"riscvsim/internal/client"
	"riscvsim/internal/server"
	"riscvsim/sim"
)

// loopProgram never halts, so every step budget executes in full and
// cycle counts are deterministic across the reference and routed runs.
const loopProgram = "loop: addi t0, t0, 1\nbeq x0, x0, loop\n"

func main() {
	var (
		url  = flag.String("url", "http://127.0.0.1:8040", "simrouter base URL")
		k1   = flag.Uint64("k1", 5000, "cycles to step before the checkpoint + kill")
		k2   = flag.Uint64("k2", 3000, "cycles to step after the kill, across the failover")
		kill = flag.String("kill", "", "command template that kills the owning replica; {name} expands to its ring name (e.g. 'docker compose -f deploy/docker-compose.yml kill {name}')")
		wait = flag.Duration("wait", 60*time.Second, "deadline for the deployment to become reachable")
	)
	flag.Parse()
	if *kill == "" {
		fatalf("-kill is required (how do I kill the owning replica?)")
	}

	waitReachable(*url, *wait)

	// The uninterrupted reference: same build path as the server.
	ref, aerr := server.BuildMachine(&api.SimulateRequest{Code: loopProgram})
	if aerr != nil {
		fatalf("building reference machine: %v", aerr)
	}
	ref.EnableSnapshots(0)
	ref.StepN(*k1 + *k2)
	want := ref.StateHash()

	cl := client.NewForURL(*url, true)
	sess, err := cl.NewSession(&api.SessionNewRequest{SimulateRequest: api.SimulateRequest{Code: loopProgram}})
	if err != nil {
		fatalf("session create via router: %v", err)
	}
	id := sess.SessionID
	fmt.Printf("distsmoke: session %s created\n", id)

	if _, err := cl.Step(id, int64(*k1)); err != nil {
		fatalf("step k1: %v", err)
	}
	if _, err := cl.Checkpoint(id); err != nil {
		fatalf("checkpoint before kill: %v", err)
	}
	owner := ownerOf(*url, id)
	fmt.Printf("distsmoke: stepped %d cycles, checkpointed; owner is %s — killing it\n", *k1, owner)

	cmdline := strings.ReplaceAll(*kill, "{name}", owner)
	cmd := exec.Command("sh", "-c", cmdline)
	cmd.Stdout, cmd.Stderr = os.Stdout, os.Stderr
	if err := cmd.Run(); err != nil {
		fatalf("kill command %q: %v", cmdline, err)
	}

	st, err := cl.Step(id, int64(*k2))
	if err != nil {
		fatalf("step k2 after killing %s (failover did not engage): %v", owner, err)
	}
	if got, wantCycle := st.State.Cycle, *k1+*k2; got != wantCycle {
		fatalf("post-failover cycle = %d, want %d (state regressed past the checkpoint)", got, wantCycle)
	}
	newOwner := ownerOf(*url, id)
	if newOwner == owner {
		fatalf("owner still %s after the kill", owner)
	}

	ck, err := cl.Checkpoint(id)
	if err != nil {
		fatalf("checkpoint after failover: %v", err)
	}
	m, err := sim.Restore(bytes.NewReader(ck.Checkpoint))
	if err != nil {
		fatalf("restoring failover checkpoint locally: %v", err)
	}
	if got := m.StateHash(); got != want {
		fatalf("failover state hash %#x != uninterrupted reference %#x — the continuation is NOT bit-exact", got, want)
	}
	fmt.Printf("distsmoke: PASS — %s died, %s continued session %s to cycle %d, state hash %#x matches the uninterrupted run\n",
		owner, newOwner, id, *k1+*k2, want)
}

func ownerOf(base, id string) string {
	resp, err := http.Get(base + "/admin/owner?session=" + id)
	if err != nil {
		fatalf("GET /admin/owner: %v", err)
	}
	defer resp.Body.Close()
	var out struct {
		Owner string `json:"owner"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil || out.Owner == "" {
		fatalf("GET /admin/owner: bad response (%v)", err)
	}
	return out.Owner
}

// waitReachable polls the router's ring until every replica reports
// healthy (compose services can lag the router's first probes).
func waitReachable(base string, timeout time.Duration) {
	deadline := time.Now().Add(timeout)
	for {
		resp, err := http.Get(base + "/admin/ring")
		if err == nil {
			var ring struct {
				Replicas []struct {
					Healthy bool `json:"healthy"`
				} `json:"replicas"`
			}
			jerr := json.NewDecoder(resp.Body).Decode(&ring)
			resp.Body.Close()
			if jerr == nil && len(ring.Replicas) > 0 {
				all := true
				for _, r := range ring.Replicas {
					all = all && r.Healthy
				}
				if all {
					return
				}
			}
		}
		if time.Now().After(deadline) {
			fatalf("deployment at %s not fully healthy after %v", base, timeout)
		}
		time.Sleep(time.Second)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "distsmoke: "+format+"\n", args...)
	os.Exit(1)
}
