// Command simserver runs the simulation server: the paper's `simserver`
// container, serving the JSON API that both the web client and the CLI
// consume (§III-D). TLS termination belongs to a front proxy (the paper
// uses nginx), so this binary speaks plain HTTP.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"riscvsim/internal/loadgen"
	"riscvsim/internal/server"
)

func main() {
	var (
		addr        = flag.String("addr", ":8042", "listen address")
		maxSessions = flag.Int("max-sessions", 256, "interactive session cap (LRU eviction beyond it)")
		sessionTTL  = flag.Duration("session-ttl", 15*time.Minute, "evict sessions idle longer than this (negative = never)")
		spillDir    = flag.String("spill-dir", "auto",
			"checkpoint evicted sessions into this directory and rehydrate them on the next touch; \"auto\" scopes a temp directory to -addr so instances don't share session namespaces (empty = evictions lose sessions)")
		spillTTL    = flag.Duration("spill-ttl", 24*time.Hour, "garbage-collect spilled checkpoints older than this (negative = keep forever)")
		debug       = flag.Bool("debug", false, "debug-level logging (session spill/eviction events)")
		noGzip      = flag.Bool("no-gzip", false, "disable response compression")
		dockerShim  = flag.Bool("docker-shim", false, "simulate containerized deployment overhead (Table I 'Docker' rows)")
		proxyDelay  = flag.Duration("shim-delay", 2*time.Millisecond, "docker shim per-request overhead")
		parallelism = flag.Int("shim-parallelism", 0, "docker shim concurrency cap (0 = NumCPU/2)")
	)
	flag.Parse()

	if *spillDir == "auto" {
		// Scope the default by listen address: two instances on one host
		// must not share a spill namespace (their s%08d session IDs would
		// collide and rehydrate each other's machines).
		safe := strings.NewReplacer(":", "_", "/", "_").Replace(*addr)
		*spillDir = filepath.Join(os.TempDir(), "riscvsim-spill-"+safe)
	}

	srv := server.New(server.Options{
		MaxSessions: *maxSessions,
		SessionTTL:  *sessionTTL,
		DisableGzip: *noGzip,
		SpillDir:    *spillDir,
		SpillTTL:    *spillTTL,
		Debug:       *debug,
	})
	var handler http.Handler = srv.Handler()
	if *dockerShim {
		shim := &loadgen.DockerShim{ProxyDelay: *proxyDelay, Parallelism: *parallelism}
		handler = shim.Wrap(handler)
		fmt.Printf("docker shim enabled: delay=%v parallelism=%d\n", *proxyDelay, *parallelism)
	}

	fmt.Printf("simulation server listening on %s (gzip=%v, API /api/v1, legacy aliases deprecated)\n",
		*addr, !*noGzip)
	s := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
	}

	// Graceful restart: spill every live session to disk on SIGINT/TERM
	// so the next process (same -spill-dir) resumes them transparently.
	if *spillDir != "" {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		go func() {
			<-sig
			n := srv.SpillSessions()
			fmt.Printf("spilled %d live sessions to %s; shutting down\n", n, *spillDir)
			os.Exit(0)
		}()
	}
	log.Fatal(s.ListenAndServe())
}
