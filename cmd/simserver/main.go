// Command simserver runs the simulation server: the paper's `simserver`
// container, serving the JSON API that both the web client and the CLI
// consume (§III-D). TLS termination belongs to a front proxy (the paper
// uses nginx), so this binary speaks plain HTTP.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"riscvsim/internal/loadgen"
	"riscvsim/internal/server"
)

func main() {
	var (
		addr        = flag.String("addr", ":8042", "listen address")
		maxSessions = flag.Int("max-sessions", 256, "interactive session cap (LRU eviction beyond it)")
		sessionTTL  = flag.Duration("session-ttl", 15*time.Minute, "evict sessions idle longer than this (negative = never)")
		spillDir    = flag.String("spill-dir", "auto",
			"checkpoint evicted sessions into this directory and rehydrate them on the next touch; \"auto\" scopes a temp directory to -addr so instances don't share session namespaces (empty = evictions lose sessions)")
		spillTTL     = flag.Duration("spill-ttl", 24*time.Hour, "garbage-collect spilled checkpoints older than this (negative = keep forever)")
		writeThrough = flag.Bool("write-through", false, "persist explicit checkpoints to the spill store (distributed tier: the store becomes the session's authority, so replicas sharing -spill-dir can fail over)")
		assignedIDs  = flag.Bool("assigned-ids", false, "accept router-assigned session IDs via the "+"X-Riscvsim-Session-Id"+" header on create/restore (required behind simrouter)")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "on SIGINT/SIGTERM, wait up to this long for in-flight requests before spilling sessions")
		debug        = flag.Bool("debug", false, "debug-level logging (session spill/eviction events)")
		noGzip       = flag.Bool("no-gzip", false, "disable response compression")
		dockerShim   = flag.Bool("docker-shim", false, "simulate containerized deployment overhead (Table I 'Docker' rows)")
		proxyDelay   = flag.Duration("shim-delay", 2*time.Millisecond, "docker shim per-request overhead")
		parallelism  = flag.Int("shim-parallelism", 0, "docker shim concurrency cap (0 = NumCPU/2)")

		maxInFlight    = flag.Int("max-inflight", 0, "admission control: cap on concurrently executing simulation requests; beyond it requests queue briefly and are then shed with a typed 429 over_capacity (0 = unlimited)")
		maxQueue       = flag.Int("max-queue", 0, "admission control: how many requests may wait for an in-flight slot (0 = 2x max-inflight)")
		queueTimeout   = flag.Duration("queue-timeout", 0, "admission control: how long a queued request waits before being shed (0 = 1s)")
		requestTimeout = flag.Duration("request-timeout", 0, "per-request simulation deadline; a request outrunning it gets a typed deadline_exceeded (0 = none)")
	)
	flag.Parse()

	if *spillDir == "auto" {
		// Scope the default by listen address: two instances on one host
		// must not share a spill namespace (their s%08d session IDs would
		// collide and rehydrate each other's machines).
		safe := strings.NewReplacer(":", "_", "/", "_").Replace(*addr)
		*spillDir = filepath.Join(os.TempDir(), "riscvsim-spill-"+safe)
	}

	srv := server.New(server.Options{
		MaxSessions:      *maxSessions,
		SessionTTL:       *sessionTTL,
		DisableGzip:      *noGzip,
		SpillDir:         *spillDir,
		SpillTTL:         *spillTTL,
		WriteThrough:     *writeThrough,
		AllowAssignedIDs: *assignedIDs,
		MaxInFlight:      *maxInFlight,
		MaxQueue:         *maxQueue,
		QueueTimeout:     *queueTimeout,
		RequestTimeout:   *requestTimeout,
		Debug:            *debug,
	})
	var handler http.Handler = srv.Handler()
	if *dockerShim {
		shim := &loadgen.DockerShim{ProxyDelay: *proxyDelay, Parallelism: *parallelism}
		handler = shim.Wrap(handler)
		fmt.Printf("docker shim enabled: delay=%v parallelism=%d\n", *proxyDelay, *parallelism)
	}

	fmt.Printf("simulation server listening on %s (gzip=%v, API /api/v1, legacy aliases deprecated)\n",
		*addr, !*noGzip)
	s := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
	}

	// Graceful shutdown: drain in-flight requests first, THEN spill every
	// live session so the next process (same -spill-dir) resumes them
	// transparently. Spilling before the drain would race requests that
	// still hold session machines — the spilled checkpoint could miss the
	// work an in-flight step was doing (see TestShutdownDrainsBeforeSpill).
	done := make(chan struct{})
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		defer close(done)
		<-sig
		ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		n, err := srv.Shutdown(ctx, s)
		if err != nil {
			fmt.Printf("drain ended early (%v); spilled %d live sessions to %s\n", err, n, *spillDir)
			return
		}
		fmt.Printf("drained; spilled %d live sessions to %s; shutting down\n", n, *spillDir)
	}()
	if err := s.ListenAndServe(); err != http.ErrServerClosed {
		log.Fatal(err)
	}
	<-done
}
