// Command simserver runs the simulation server: the paper's `simserver`
// container, serving the JSON API that both the web client and the CLI
// consume (§III-D). TLS termination belongs to a front proxy (the paper
// uses nginx), so this binary speaks plain HTTP.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"time"

	"riscvsim/internal/loadgen"
	"riscvsim/internal/server"
)

func main() {
	var (
		addr        = flag.String("addr", ":8042", "listen address")
		maxSessions = flag.Int("max-sessions", 256, "interactive session cap (LRU eviction beyond it)")
		sessionTTL  = flag.Duration("session-ttl", 15*time.Minute, "evict sessions idle longer than this (negative = never)")
		noGzip      = flag.Bool("no-gzip", false, "disable response compression")
		dockerShim  = flag.Bool("docker-shim", false, "simulate containerized deployment overhead (Table I 'Docker' rows)")
		proxyDelay  = flag.Duration("shim-delay", 2*time.Millisecond, "docker shim per-request overhead")
		parallelism = flag.Int("shim-parallelism", 0, "docker shim concurrency cap (0 = NumCPU/2)")
	)
	flag.Parse()

	srv := server.New(server.Options{
		MaxSessions: *maxSessions,
		SessionTTL:  *sessionTTL,
		DisableGzip: *noGzip,
	})
	var handler http.Handler = srv.Handler()
	if *dockerShim {
		shim := &loadgen.DockerShim{ProxyDelay: *proxyDelay, Parallelism: *parallelism}
		handler = shim.Wrap(handler)
		fmt.Printf("docker shim enabled: delay=%v parallelism=%d\n", *proxyDelay, *parallelism)
	}

	fmt.Printf("simulation server listening on %s (gzip=%v, API /api/v1, legacy aliases deprecated)\n",
		*addr, !*noGzip)
	s := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
	}
	log.Fatal(s.ListenAndServe())
}
