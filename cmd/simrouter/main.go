// Command simrouter fronts a set of simserver replicas with the
// consistent-hash session router (docs/deployment.md): /api/v1/* is
// forwarded to the replica that owns each session, session IDs are
// assigned by the router so ownership is computable up front, and dead
// replicas fail over onto the shared checkpoint store's last
// write-through checkpoint.
//
// Replicas must run with -assigned-ids and share a -spill-dir (or
// equivalent store volume) with -write-through for failover to work.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"time"

	"riscvsim/internal/router"
)

func main() {
	var (
		addr     = flag.String("addr", ":8040", "listen address")
		replicas = flag.String("replicas", "",
			"comma-separated replica list, name=url pairs (sim1=http://sim1:8042,...); bare URLs take their host as the ring name")
		healthInterval = flag.Duration("health-interval", time.Second, "replica health probe spacing")
		healthTimeout  = flag.Duration("health-timeout", 500*time.Millisecond, "one health probe's budget")
		retries        = flag.Int("retries", 3, "re-forward attempts after a replica failure")
		retryBackoff   = flag.Duration("retry-backoff", 100*time.Millisecond, "base of the jittered exponential backoff between re-forward attempts")
		retryBudget    = flag.Float64("retry-budget", 10, "aggregate retry token bucket: each retry spends one token, successful forwards earn retry-budget-ratio back; empty bucket = fail fast")
		budgetRatio    = flag.Float64("retry-budget-ratio", 0.1, "retry tokens earned per successful forward")
		breakerTrips   = flag.Int("breaker-threshold", 3, "consecutive forward failures that trip a replica's circuit breaker")
		breakerCool    = flag.Duration("breaker-cooldown", 0, "how long a tripped breaker stays open before half-opening (0 = 2x health-interval)")
		requestTimeout = flag.Duration("request-timeout", 0, "end-to-end deadline per forwarded request, streaming endpoints exempt (0 = none)")
		debug          = flag.Bool("debug", false, "log routing decisions, health transitions and migrations")
	)
	flag.Parse()

	reps, err := router.ParseReplicas(*replicas)
	if err != nil {
		log.Fatalf("-replicas: %v", err)
	}
	rt, err := router.New(router.Options{
		Replicas:         reps,
		HealthInterval:   *healthInterval,
		HealthTimeout:    *healthTimeout,
		Retries:          *retries,
		RetryBackoff:     *retryBackoff,
		RetryBudget:      *retryBudget,
		RetryBudgetRatio: *budgetRatio,
		BreakerThreshold: *breakerTrips,
		BreakerCooldown:  *breakerCool,
		RequestTimeout:   *requestTimeout,
		Debug:            *debug,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer rt.Close()

	fmt.Printf("session router listening on %s over %d replicas (admin: /admin/ring, /admin/owner, /admin/metrics)\n",
		*addr, len(reps))
	s := &http.Server{
		Addr:              *addr,
		Handler:           rt.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	log.Fatal(s.ListenAndServe())
}
