// Command riscvsim is the simulator's command-line interface (paper §II-E):
// it executes large programs written in C or assembly and collects runtime
// statistics. The two mandatory inputs are the source file and the
// architecture description in JSON; optional flags select the entry point,
// memory fills, dump ranges, verbosity and output format (text or JSON).
//
// By default the CLI runs the simulation in-process. With --host/--port it
// connects to a simulation server instead, exactly like the paper's CLI.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"riscvsim/internal/api"
	"riscvsim/internal/client"
	"riscvsim/internal/fuzz"
	"riscvsim/internal/server"
	"riscvsim/internal/trace"
	"riscvsim/internal/workload"
	"riscvsim/sim"
)

// traceFlag implements -trace[=stages]: a bare -trace turns tracing on
// for every stage; -trace=fetch,commit keeps only the named stages
// (docs/trace.md has the grammar).
type traceFlag struct {
	on     bool
	stages string
}

// String implements flag.Value.
func (f *traceFlag) String() string {
	if !f.on {
		return ""
	}
	if f.stages == "" {
		return "all"
	}
	return f.stages
}

// Set implements flag.Value.
func (f *traceFlag) Set(v string) error {
	switch v {
	case "false":
		f.on, f.stages = false, ""
	case "", "true", "all":
		f.on, f.stages = true, ""
	default:
		if _, err := trace.ParseStages(v); err != nil {
			return err
		}
		f.on, f.stages = true, v
	}
	return nil
}

// IsBoolFlag lets -trace appear without a value.
func (f *traceFlag) IsBoolFlag() bool { return true }

// suiteFlag implements -suite[=filter]: a bare -suite runs the whole
// embedded workload corpus; -suite=branch-heavy or -suite=matmul,bitmix
// selects a subset by tag or name substring (docs/workloads.md).
type suiteFlag struct {
	on     bool
	filter string
}

// String implements flag.Value.
func (f *suiteFlag) String() string {
	if !f.on {
		return ""
	}
	if f.filter == "" {
		return "all"
	}
	return f.filter
}

// Set implements flag.Value.
func (f *suiteFlag) Set(v string) error {
	switch v {
	case "false":
		f.on, f.filter = false, ""
	case "", "true", "all":
		f.on, f.filter = true, ""
	default:
		if _, err := workload.Match(v); err != nil {
			return err
		}
		f.on, f.filter = true, v
	}
	return nil
}

// IsBoolFlag lets -suite appear without a value.
func (f *suiteFlag) IsBoolFlag() bool { return true }

func main() {
	var (
		archPath = flag.String("arch", "", "architecture description JSON file (default: built-in 2-wide preset)")
		preset   = flag.String("preset", "", "named preset: default, scalar, wide4")
		entry    = flag.String("entry", "", "entry label (default: first instruction, or main for C)")
		language = flag.String("lang", "", "source language: asm or c (default: by file extension)")
		optimize = flag.Int("O", 2, "C optimization level 0..3")
		steps    = flag.Uint64("steps", 0, "cycle limit (0 = run to completion)")
		fastFwd  = flag.Bool("fast-forward", false, "functional fast-forward mode: architectural state only, no pipeline timing (1 instruction = 1 cycle)")
		parallel = flag.Int("parallel", 0, "time-parallel detailed simulation on K cores (>= 2; requires a terminating program; final state bit-exact, timing stitched within the warm-up bound — docs/parallel.md)")
		warmup   = flag.Uint64("warmup", 0, "per-interval detailed warm-up in committed instructions whose metrics are discarded (0 = default; with -parallel)")
		format   = flag.String("format", "text", "output format: text or json")
		verbose  = flag.Int("v", 1, "verbosity: 0 stats only, 1 +summary, 2 +debug log, 3 +state")
		dump     = flag.String("dump", "", "memory dump range after the run: label or addr:len")
		cost     = flag.Bool("cost", false, "print the chip-area and power estimate after the run")
		memFill  = flag.String("fill", "", "memory fills label=v1,v2,... (semicolon separated)")
		ckptOut  = flag.String("checkpoint", "", "write a machine checkpoint to this file after the run (in-process only)")
		ckptIn   = flag.String("restore", "", "resume from a checkpoint file instead of building from source")
		host     = flag.String("host", "", "server host (empty = in-process simulation)")
		port     = flag.Int("port", 8042, "server port")
		gzipOn   = flag.Bool("gzip", true, "use gzip when talking to a server")

		tracePC    = flag.String("trace-pc", "", "trace PC-range filter lo:hi (inclusive code indices)")
		traceLimit = flag.Int("trace-limit", 0, "trace event bound (default 4096, max 65536)")

		fuzzOn   = flag.Bool("fuzz", false, "run a co-simulation fuzzing campaign instead of a program (docs/fuzzing.md)")
		fuzzN    = flag.Int("fuzz-n", 1000, "fuzz: number of generated programs")
		fuzzSeed = flag.Int64("fuzz-seed", 1, "fuzz: campaign base seed (program i uses seed+i; replay a failure with -fuzz-n=1 -fuzz-seed=<its seed>)")
		fuzzOut  = flag.String("fuzz-out", "", "fuzz: directory for shrunk reproducer files (empty = report only)")
	)
	var traceOn traceFlag
	flag.Var(&traceOn, "trace", "print a pipeline diagram; optionally =stage,... (fetch, decode, rename, dispatch, issue, execute, writeback, commit, squash)")
	var suiteOn suiteFlag
	flag.Var(&suiteOn, "suite", "run the embedded workload corpus instead of a program; optionally =filter (tags or name substrings, comma-separated)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: riscvsim [flags] program.{s,c}\n       riscvsim [flags] -restore state.ckpt\n       riscvsim [flags] -suite[=filter]\n       riscvsim [flags] -fuzz [-fuzz-n=N] [-fuzz-seed=S]\n\nFlags:\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	// A fuzzing campaign replaces the program argument: generate, verify
	// in lockstep, shrink, and exit non-zero on any divergence.
	if *fuzzOn {
		if flag.NArg() != 0 || *ckptIn != "" || *ckptOut != "" || suiteOn.on || *host != "" {
			flag.Usage()
			os.Exit(2)
		}
		runFuzz(*fuzzN, *fuzzSeed, *fuzzOut, *preset, *archPath)
		return
	}

	// The suite replaces the program argument: run the corpus and exit.
	if suiteOn.on {
		if flag.NArg() != 0 || *ckptIn != "" || *ckptOut != "" {
			flag.Usage()
			os.Exit(2)
		}
		runSuite(&suiteOn, *preset, *archPath, *host, *port, *gzipOn, *format)
		return
	}
	// A checkpoint to resume from replaces the program argument.
	if (*ckptIn == "" && flag.NArg() != 1) || (*ckptIn != "" && flag.NArg() != 0) {
		flag.Usage()
		os.Exit(2)
	}

	var src []byte
	lang := *language
	if *ckptIn == "" {
		srcPath := flag.Arg(0)
		var err error
		src, err = os.ReadFile(srcPath)
		if err != nil {
			fatal("reading program: %v", err)
		}
		if lang == "" {
			if strings.HasSuffix(srcPath, ".c") {
				lang = "c"
			} else {
				lang = "asm"
			}
		}
	}

	fills, err := parseFills(*memFill)
	if err != nil {
		fatal("%v", err)
	}

	req := &api.SimulateRequest{
		Code:         string(src),
		Language:     lang,
		Optimize:     *optimize,
		Entry:        *entry,
		Preset:       *preset,
		Steps:        *steps,
		MemFills:     fills,
		IncludeState: *verbose >= 3,
		IncludeLog:   *verbose >= 2,
		FastForward:  *fastFwd,
		Parallelism:  *parallel,
		WarmupCycles: *warmup,
	}
	if *parallel >= 2 && *ckptOut != "" {
		fatal("-parallel produces no serial timing history to checkpoint; drop one of the flags")
	}
	// A trace filter flag implies -trace itself.
	if *tracePC != "" || *traceLimit != 0 {
		traceOn.on = true
	}
	if traceOn.on {
		req.Trace = &api.TraceOptions{Stages: traceOn.stages, PCRange: *tracePC, Limit: *traceLimit}
	}
	if *ckptIn != "" {
		data, err := os.ReadFile(*ckptIn)
		if err != nil {
			fatal("reading checkpoint: %v", err)
		}
		req.Checkpoint = data
	}
	if *archPath != "" {
		arch, err := os.ReadFile(*archPath)
		if err != nil {
			fatal("reading architecture: %v", err)
		}
		raw := json.RawMessage(arch)
		req.Config = &raw
	}

	var resp *api.SimulateResponse
	switch {
	case *host != "":
		if *ckptOut != "" {
			fatal("-checkpoint needs the in-process machine; omit -host (servers expose POST /api/v1/session/checkpoint instead)")
		}
		c := client.New(*host, *port, *gzipOn)
		resp, err = c.Simulate(req)
		if err != nil {
			fatal("%v", err)
		}
	case *ckptOut != "":
		// Saving a checkpoint needs the machine itself, so this path
		// simulates directly instead of through the loopback client.
		resp, err = runAndCheckpoint(req, *ckptOut)
		if err != nil {
			fatal("%v", err)
		}
	default:
		resp, err = runLocal(req)
		if err != nil {
			fatal("%v", err)
		}
	}

	switch *format {
	case "json":
		out, err := json.MarshalIndent(resp, "", "  ")
		if err != nil {
			fatal("encoding output: %v", err)
		}
		fmt.Println(string(out))
	default:
		if *verbose >= 1 {
			fmt.Printf("halted=%v (%s) after %d cycles\n", resp.Halted, resp.HaltReason, resp.Cycles)
			if p := resp.Parallel; p != nil {
				fmt.Printf("time-parallel: %d workers, %d healed intervals\n", p.Workers, p.Healed)
			}
		}
		fmt.Println(resp.Stats.FormatText())
		if *verbose >= 2 {
			for _, e := range resp.Log {
				fmt.Printf("[cycle %6d] %s\n", e.Cycle, e.Msg)
			}
		}
		if resp.Trace != nil {
			fmt.Println()
			fmt.Printf("Pipeline trace: %d events collected (%d matched, %d dropped by the bound)\n",
				len(resp.Trace.Events), resp.Trace.Total, resp.Trace.Dropped)
			fmt.Print(trace.Diagram(trace.Lifetimes(resp.Trace.Events), 0))
		}
	}

	if *dump != "" && *host == "" {
		// Dumps need the in-process machine; re-run to fetch memory.
		if err := printDump(req, *dump); err != nil {
			fatal("dump: %v", err)
		}
	}

	if *cost {
		cfg := sim.DefaultConfig()
		if *preset != "" {
			if p, ok := sim.Presets()[*preset]; ok {
				cfg = p
			}
		}
		if req.Config != nil {
			if c, err := sim.ImportConfig(*req.Config); err == nil {
				cfg = c
			}
		}
		fmt.Println()
		fmt.Println(sim.EstimateCostFor(cfg, resp.Stats).FormatText())
	}
}

// runFuzz drives a co-simulation fuzzing campaign: fuzz.Run generates N
// programs from the base seed, runs each in lockstep across both
// semantic engines on the selected architecture, and shrinks any
// divergent one. Failure reports (including the exact replay command
// line) stream to stdout as they are found; the exit status is the gate.
func runFuzz(n int, seed int64, outDir, preset, archPath string) {
	cfg := sim.DefaultConfig()
	if preset != "" {
		p, ok := sim.Presets()[preset]
		if !ok {
			fatal("unknown preset %q", preset)
		}
		cfg = p
	}
	if archPath != "" {
		arch, err := os.ReadFile(archPath)
		if err != nil {
			fatal("reading architecture: %v", err)
		}
		c, err := sim.ImportConfig(arch)
		if err != nil {
			fatal("architecture: %v", err)
		}
		cfg = c
	}
	fmt.Printf("fuzz: %d programs, base seed %d, architecture %s\n", n, seed, cfg.Name)
	failures, err := fuzz.Run(fuzz.Options{
		N: n, Seed: seed, Config: cfg, OutDir: outDir, Log: os.Stdout,
	})
	if err != nil {
		fatal("%v", err)
	}
	if len(failures) > 0 {
		os.Exit(1)
	}
}

// runSuite executes the embedded workload corpus — in-process through a
// loopback client, or against -host — and prints the per-workload metrics
// table (or the JSON report with -format json).
func runSuite(sf *suiteFlag, preset, archPath, host string, port int, gz bool, format string) {
	req := &api.SuiteRequest{Preset: preset, Filter: sf.filter}
	if archPath != "" {
		arch, err := os.ReadFile(archPath)
		if err != nil {
			fatal("reading architecture: %v", err)
		}
		raw := json.RawMessage(arch)
		req.Config = &raw
	}
	var c *client.Client
	if host != "" {
		c = client.New(host, port, gz)
	} else {
		var closeFn func()
		c, closeFn = client.Local(server.DefaultOptions())
		defer closeFn()
	}
	resp, err := c.RunSuite(req)
	if err != nil {
		fatal("%v", err)
	}
	if format == "json" {
		out, err := json.MarshalIndent(resp, "", "  ")
		if err != nil {
			fatal("encoding output: %v", err)
		}
		fmt.Println(string(out))
		return
	}
	fmt.Print(resp.Table())
	fmt.Printf("\n%d workloads on %d workers in %.1f ms\n",
		len(resp.Workloads), resp.Workers, float64(resp.WallNanos)/1e6)
}

// runLocal executes the request in-process through the same code path the
// server uses (via a loopback client), so behaviours match exactly.
func runLocal(req *api.SimulateRequest) (*api.SimulateResponse, error) {
	c, closeFn := client.Local(server.DefaultOptions())
	defer closeFn()
	return c.Simulate(req)
}

// buildLocalMachine constructs the in-process machine a request
// describes — restored from a checkpoint or built from source — with
// exactly the server's semantics (shared builder, including memory
// fills and preset/config validation).
func buildLocalMachine(req *api.SimulateRequest) (*sim.Machine, error) {
	m, aerr := server.BuildMachine(req)
	if aerr != nil {
		return nil, aerr
	}
	return m, nil
}

// runAndCheckpoint simulates in-process and saves the machine state to
// ckptPath afterwards — the warm-prefix producer for forked sweeps
// (restore it with -restore, POST /api/v1/session/restore, or as a
// /api/v1/batch base checkpoint).
func runAndCheckpoint(req *api.SimulateRequest, ckptPath string) (*api.SimulateResponse, error) {
	m, err := buildLocalMachine(req)
	if err != nil {
		return nil, err
	}
	var ring *sim.TraceRing
	if req.Trace != nil {
		r, aerr := server.TraceRing(req.Trace)
		if aerr != nil {
			return nil, aerr
		}
		ring = r
		m.SetTracer(ring)
	}
	if req.FastForward {
		m.SetEngineMode(sim.EngineFastForward)
	}
	steps := req.Steps
	if steps == 0 {
		steps = 50_000_000
	}
	m.Run(steps)
	f, err := os.Create(ckptPath)
	if err != nil {
		return nil, fmt.Errorf("creating checkpoint file: %w", err)
	}
	if err := m.Checkpoint(f); err != nil {
		f.Close()
		return nil, fmt.Errorf("writing checkpoint: %w", err)
	}
	if err := f.Close(); err != nil {
		return nil, err
	}
	resp := &api.SimulateResponse{
		Halted:     m.Halted(),
		HaltReason: m.HaltReason(),
		Cycles:     m.Cycle(),
		Stats:      m.Report(),
	}
	if req.IncludeState {
		resp.State = m.State(req.IncludeLog)
	} else if req.IncludeLog {
		resp.Log = m.Log()
	}
	if ring != nil {
		resp.Trace = server.TraceResultOf(ring)
	}
	return resp, nil
}

func parseFills(spec string) ([]api.MemFill, error) {
	if spec == "" {
		return nil, nil
	}
	var fills []api.MemFill
	for _, part := range strings.Split(spec, ";") {
		eq := strings.IndexByte(part, '=')
		if eq <= 0 {
			return nil, fmt.Errorf("bad fill %q (want label=v1,v2,...)", part)
		}
		f := api.MemFill{Label: part[:eq]}
		for _, vs := range strings.Split(part[eq+1:], ",") {
			v, err := strconv.ParseInt(strings.TrimSpace(vs), 0, 64)
			if err != nil {
				return nil, fmt.Errorf("bad fill value %q: %v", vs, err)
			}
			f.Values = append(f.Values, v)
		}
		fills = append(fills, f)
	}
	return fills, nil
}

// printDump re-runs the program in-process and prints a memory range.
func printDump(req *api.SimulateRequest, spec string) error {
	m, err := buildLocalMachine(req)
	if err != nil {
		return err
	}
	m.Run(50_000_000)

	addr, length := 0, 64
	if i := strings.IndexByte(spec, ':'); i > 0 {
		a, err1 := strconv.Atoi(spec[:i])
		l, err2 := strconv.Atoi(spec[i+1:])
		if err1 != nil || err2 != nil {
			return fmt.Errorf("bad dump range %q", spec)
		}
		addr, length = a, l
	} else {
		a, size, ok := m.LookupLabel(spec)
		if !ok {
			return fmt.Errorf("no allocation labelled %q", spec)
		}
		addr, length = a, size
	}
	dump, err := m.HexDump(addr, length)
	if err != nil {
		return err
	}
	fmt.Printf("\nMemory dump %s:\n%s", spec, dump)
	return nil
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "riscvsim: "+format+"\n", args...)
	os.Exit(1)
}
