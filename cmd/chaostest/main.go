// Command chaostest runs deterministic chaos campaigns against the
// distributed session tier (docs/robustness.md): for each schedule it
// spawns an in-process cluster — N replicas over one shared
// fault-injecting checkpoint store behind the real router — drives a
// seed-derived sequence of create/step/checkpoint/kill/revive
// operations through it with faults firing on the store and network
// paths, then checks the tier's invariants with faults off:
//
//   - an acked durable checkpoint is never lost (the session stays
//     reachable at or past the acked cycle),
//   - rehydrated state is bit-exact (StateHash against a local replay),
//   - store versions only move forward,
//   - every client-visible outcome is typed.
//
// Campaign seeds derive additively from -chaos-seed (internal/seeds):
// schedule i runs under seed base+i, so a failing schedule replays
// alone with `-chaos-seed <derived> -schedules 1`. On failure the
// schedule is shrunk to its shortest failing prefix and the exact
// reproducer command line is printed.
//
// CI runs this per-PR as the chaos-smoke lane (fixed seed, fixed
// schedule count) plus one campaign with -drop-acked-puts, a planted
// durability bug the harness MUST catch — proving the lane can fail.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"riscvsim/internal/chaos"
	"riscvsim/internal/seeds"
)

func main() {
	var (
		baseSeed  = flag.Int64("chaos-seed", 1, "base seed; schedule i runs under seed base+i")
		schedules = flag.Int("schedules", 200, "how many schedules to run")
		ops       = flag.Int("ops", 60, "operations per schedule")
		sessions  = flag.Int("sessions", 4, "session slots per schedule")
		replicas  = flag.Int("replicas", 3, "replicas per cluster")
		storeDir  = flag.String("store-dir", "", "back the shared store with this directory (empty = in-memory)")
		minimize  = flag.Bool("minimize", true, "shrink a failing schedule to its shortest failing prefix")
		dropAcked = flag.Bool("drop-acked-puts", false, "plant the acked-checkpoint-loss bug in the store (harness self-test: the campaign MUST fail)")
		putErr    = flag.Float64("store-put-err", 0.05, "store write failure probability")
		getErr    = flag.Float64("store-get-err", 0.05, "store read failure probability")
		corrupt   = flag.Float64("store-corrupt", 0.05, "transient corrupt/torn store read probability")
		storeLat  = flag.Float64("store-latency", 0.05, "store latency spike probability")
		netDrop   = flag.Float64("net-drop", 0.05, "replica connection drop probability")
		netTorn   = flag.Float64("net-torn", 0.05, "torn (mid-body cut) response probability")
		netSlow   = flag.Float64("net-slow", 0.05, "slow replica response probability")
		reproOut  = flag.String("repro-out", "", "append failing reproducer command lines to this file (CI artifact)")
		verbose   = flag.Bool("v", false, "per-schedule result lines")
	)
	flag.Parse()

	replicaNames := make([]string, *replicas)
	for i := range replicaNames {
		replicaNames[i] = fmt.Sprintf("sim%d", i+1)
	}

	start := time.Now()
	failures := 0
	for i := 0; i < *schedules; i++ {
		seed := seeds.Derive(*baseSeed, i)
		cfg := chaos.Config{
			Seed:          seed,
			StorePutErr:   *putErr,
			StoreGetErr:   *getErr,
			StoreCorrupt:  *corrupt,
			StoreLatency:  *storeLat,
			NetDrop:       *netDrop,
			NetTorn:       *netTorn,
			NetSlow:       *netSlow,
			DropAckedPuts: *dropAcked,
			Replicas:      *replicas,
			StoreDir:      scopedDir(*storeDir, i),
		}
		sched := chaos.BuildSchedule(seed, *ops, *sessions, replicaNames)
		res, err := chaos.Run(cfg, sched)
		if err != nil {
			fmt.Fprintf(os.Stderr, "chaostest: harness error at seed %d: %v\n", seed, err)
			os.Exit(2)
		}
		if *verbose || res.Failed() {
			fmt.Println(res.Summary())
		}
		if !res.Failed() {
			continue
		}
		failures++
		for _, v := range res.Violations {
			fmt.Printf("  violation: %s\n", v)
		}
		repro := len(sched)
		if *minimize {
			if minSched, minRes, merr := chaos.Minimize(cfg, sched); merr == nil {
				repro = len(minSched)
				fmt.Printf("  minimized: %d ops -> %d ops, first violation: %s\n",
					len(sched), len(minSched), minRes.Violations[0])
			} else {
				fmt.Printf("  minimize failed: %v\n", merr)
			}
		}
		line := fmt.Sprintf("chaostest -chaos-seed %d -schedules 1 -ops %d -sessions %d -replicas %d%s",
			seed, repro, *sessions, *replicas, flagSuffix(*dropAcked))
		fmt.Printf("  reproduce: %s\n", line)
		if *reproOut != "" {
			appendLine(*reproOut, line)
		}
	}

	fmt.Printf("chaostest: %d schedules, %d failed, %v\n", *schedules, failures, time.Since(start).Round(time.Millisecond))
	if failures > 0 {
		os.Exit(1)
	}
}

// scopedDir gives each schedule its own store directory so campaigns
// on a shared volume don't cross-contaminate session namespaces.
func scopedDir(base string, i int) string {
	if base == "" {
		return ""
	}
	return fmt.Sprintf("%s/sched%04d", base, i)
}

// appendLine appends one reproducer line to path (best-effort: a
// failed write must not mask the campaign failure itself).
func appendLine(path, line string) {
	f, err := os.OpenFile(path, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		fmt.Fprintf(os.Stderr, "chaostest: repro-out: %v\n", err)
		return
	}
	defer f.Close()
	fmt.Fprintln(f, line)
}

// flagSuffix keeps reproducer lines exact when the self-test bug was
// planted.
func flagSuffix(dropAcked bool) string {
	if dropAcked {
		return " -drop-acked-puts"
	}
	return ""
}
